#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "core/metrics_export.hpp"
#include "core/spplus.hpp"
#include "core/sweep_internal.hpp"
#include "runtime/run.hpp"
#include "runtime/serial_engine.hpp"
#include "runtime/view_arena.hpp"
#include "support/common.hpp"
#include "support/crash.hpp"
#include "support/faultpoint.hpp"
#include "support/profile.hpp"
#include "support/rolling_rate.hpp"
#include "support/trace.hpp"

namespace rader {

namespace {

/// The sweep's monitor thread: one loop serving every live consumer —
/// the `--progress` heartbeat (rolling-window rate/ETA), the JSONL
/// metrics sampler (`--metrics-out`), the queue-depth gauge, and the hang
/// watchdog (`--watchdog-ms`).  Everything it reads is wait-free for the
/// workers: per-worker completion counters are relaxed atomics and the
/// metrics snapshot comes from the workers' SharedSnapshot slots.
class SweepMonitor {
 public:
  static bool wanted(const SweepOptions& options) {
    return options.progress || options.metrics_out != nullptr ||
           options.watchdog_ms > 0;
  }

  SweepMonitor(const SweepOptions& options, std::size_t total,
               std::vector<std::atomic<std::uint64_t>>* per_worker,
               std::atomic<std::uint64_t>* racy,
               const metrics::SharedSnapshot* live,
               metrics::Registry* monitor_reg)
      : options_(options),
        total_(total),
        per_worker_(per_worker),
        racy_(racy),
        live_(live),
        monitor_reg_(monitor_reg),
        out_(options.progress_out != nullptr ? *options.progress_out
                                             : std::cerr),
        sampler_(options.metrics_out,
                 std::max(1u, options.metrics_interval_ms)),
        heartbeat_interval_ms_(std::max(1u, options.progress_interval_ms)) {
    // Tick at the fastest cadence any consumer needs; each consumer then
    // throttles itself (the sampler internally, the heartbeat here).
    unsigned tick = heartbeat_interval_ms_;
    if (options.metrics_out != nullptr) {
      tick = std::min(tick, std::max(1u, options.metrics_interval_ms));
    }
    if (options.watchdog_ms > 0) {
      tick = std::min(tick, std::max(1u, options.watchdog_ms / 4));
    }
    tick_ms_ = std::max(1u, tick);
    rate_.sample(metrics::now_nanos(), 0);  // ETA baseline (first interval)
    last_change_nanos_ = metrics::now_nanos();
    thread_ = std::thread([this] { loop(); });
  }

  ~SweepMonitor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    // Workers have joined by the time the owner destroys the monitor, so
    // the final observations are exact, not approximate.
    const std::uint64_t done = total_done();
    monitor_reg_->gauge_set(metrics::Gauge::kSweepQueueDepth,
                            static_cast<std::int64_t>(total_ - done));
    if (options_.progress) out_ << line(done, /*final=*/true) << std::endl;
    if (options_.metrics_out != nullptr) {
      sampler_.final_sample(done, total_, live_->read());
    }
  }

  SweepMonitor(const SweepMonitor&) = delete;
  SweepMonitor& operator=(const SweepMonitor&) = delete;

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(tick_ms_),
                         [this] { return stop_; })) {
      tick();
    }
  }

  void tick() {
    const std::uint64_t done = total_done();
    const std::uint64_t now = metrics::now_nanos();
    monitor_reg_->gauge_set(metrics::Gauge::kSweepQueueDepth,
                            static_cast<std::int64_t>(total_ - done));
    if (options_.progress &&
        now - last_heartbeat_nanos_ >=
            std::uint64_t{heartbeat_interval_ms_} * 1'000'000) {
      last_heartbeat_nanos_ = now;
      rate_.sample(now, done);
      out_ << line(done, /*final=*/false) << std::endl;
    }
    if (options_.metrics_out != nullptr) {
      sampler_.maybe_sample(done, total_, live_->read());
    }
    if (options_.watchdog_ms > 0) {
      if (done != last_done_) {
        last_done_ = done;
        last_change_nanos_ = now;
        armed_ = true;
      } else if (armed_ && done < total_ &&
                 now - last_change_nanos_ >=
                     std::uint64_t{options_.watchdog_ms} * 1'000'000) {
        // No spec completed within the deadline: leave a post-mortem and
        // disarm until progress resumes (one report per stall episode).
        crash::write_postmortem(options_.watchdog_fd,
                                "watchdog: sweep stalled");
        monitor_reg_->bump(metrics::Counter::kPostmortemDumps);
        armed_ = false;
      }
    }
  }

  std::uint64_t total_done() const {
    std::uint64_t done = 0;
    for (const auto& w : *per_worker_) {
      done += w.load(std::memory_order_relaxed);
    }
    return done;
  }

  std::string line(std::uint64_t done, bool final) const {
    std::ostringstream workers;
    for (std::size_t w = 0; w < per_worker_->size(); ++w) {
      workers << (w == 0 ? "" : " ") << 'w' << w << ':'
              << (*per_worker_)[w].load(std::memory_order_relaxed);
    }
    const std::uint64_t remaining = total_ > done ? total_ - done : 0;
    char perf[96];
    if (final) {
      // The summary reports the true whole-run average (clamped elapsed
      // time: a sub-millisecond sweep must not print inf).
      const double secs = std::max(clock_.seconds(), 1e-9);
      std::snprintf(perf, sizeof(perf), "%.1f specs/s, %.2fs elapsed",
                    static_cast<double>(done) / secs, secs);
    } else {
      // Live rate/ETA come from the rolling window, which tracks the
      // current completion regime of front-loaded prefix sweeps.  Until
      // the window has a usable rate (first interval, or a stall) the ETA
      // is unknown — printed as "--", never nan/inf.
      const double rate = rate_.rate_per_sec();
      if (rate > 0.0) {
        std::snprintf(perf, sizeof(perf), "%.1f specs/s, eta %.1fs", rate,
                      rate_.eta_seconds(remaining));
      } else {
        std::snprintf(perf, sizeof(perf), "%.1f specs/s, eta --", rate);
      }
    }
    std::ostringstream os;
    os << (final ? "sweep done: " : "sweep: ") << done << '/' << total_
       << " specs (" << perf << ", racy "
       << racy_->load(std::memory_order_relaxed) << ") [" << workers.str()
       << ']';
    return os.str();
  }

  const SweepOptions& options_;
  const std::size_t total_;
  std::vector<std::atomic<std::uint64_t>>* per_worker_;
  std::atomic<std::uint64_t>* racy_;
  const metrics::SharedSnapshot* live_;
  metrics::Registry* monitor_reg_;
  std::ostream& out_;
  MetricsSampler sampler_;
  const unsigned heartbeat_interval_ms_;
  unsigned tick_ms_;
  support::RollingRate rate_;
  std::uint64_t last_heartbeat_nanos_ = 0;
  std::uint64_t last_done_ = 0;
  std::uint64_t last_change_nanos_ = 0;
  bool armed_ = true;
  metrics::Stopwatch clock_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

namespace sweep_internal {

/// The steal query context is the recorded pre-merge context with the
/// merges applied: post-merge live_epochs is exactly `pre - merges` (the
/// engine's frame sync discipline guarantees nested Reduce frames restore
/// the epoch stack).
std::size_t divergence_depth(const spec::StealSpec& spec,
                             const DecisionTrail& trail) {
  for (std::size_t i = 0; i < trail.size(); ++i) {
    const PointDecision& e = trail[i];
    const std::uint32_t m = std::min(spec.merges_now(e.ctx), e.ctx.live_epochs);
    if (m != e.merges) return i;
    spec::PointCtx after = e.ctx;
    after.live_epochs = e.ctx.live_epochs - m;
    if (spec.steal(after) != e.stole) return i;
  }
  return trail.size();
}

SpecExecutor::SpecExecutor(
    const ProgramFactory& make_program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    const SweepOptions& options)
    : make_program_(make_program),
      family_(family),
      options_(options),
      // Sampling forces the rerun strategy: prefix checkpoints carry
      // detector state across specs, and each spec samples a DIFFERENT
      // granule set (per-spec seed), so a resumed checkpoint would mix two
      // sample sets.
      prefix_(options.strategy == SweepStrategy::kPrefix &&
              !options.sampling.enabled),
      stride_(std::max(1u, options.checkpoint_stride)) {}

SpecExecutor::~SpecExecutor() { drop_checkpoints(0); }

/// Capture hook shared by fresh and resumed runs: snapshot the engine and
/// fork the detector at (stride-thinned) continuation points.  Re-runs over
/// a shared prefix skip points already covered by a live checkpoint.
void SpecExecutor::on_point(std::size_t idx) {
  if (idx < 1) return;
  // Geometric spacing: the gap to the next checkpoint is at least `stride`
  // and at least 1/8 of the current depth, so a run of n points takes
  // O(log n) checkpoints and O(n) amortized fork work (a fork at point p
  // costs O(p) detector state), while a divergence at depth d still resumes
  // within ~d/8 of it.
  const std::size_t base = ckpts_.empty() ? 0 : ckpts_.back().engine.point;
  if (!ckpts_.empty() &&
      idx < base + std::max<std::size_t>(stride_, base / 8)) {
    return;
  }
  PrefixCheckpoint ck;
  eng_->capture(&ck.engine);
  ck.tool = cur_tool_->fork(nullptr);
  RADER_CHECK_MSG(ck.tool != nullptr,
                  "prefix sweep requires a forkable detector");
  ck.log = *cur_out_;
  ckpts_.push_back(std::move(ck));
  metrics::bump(metrics::Counter::kSweepCheckpoints);
  metrics::gauge_add(metrics::Gauge::kSweepCheckpointsLive, 1);
}

/// Every checkpoint counted in must be counted out, whichever of the three
/// drop sites (divergence trim, fallback clear, executor destruction)
/// releases it — the folded gauge level is 0 once every executor is gone.
void SpecExecutor::drop_checkpoints(std::size_t keep) {
  while (ckpts_.size() > keep) {
    ckpts_.pop_back();
    metrics::gauge_add(metrics::Gauge::kSweepCheckpointsLive, -1);
  }
}

SpecExecutor::RunOutcome SpecExecutor::run(std::size_t i, RaceLog* out) {
  faultpoint::fire(faultpoint::kSiteSweepSpec,
                   static_cast<std::uint64_t>(i));
  return prefix_ ? run_prefix(i, out) : run_rerun(i, out);
}

SpecExecutor::RunOutcome SpecExecutor::run_rerun(std::size_t i,
                                                 RaceLog* out) {
  if (!program_) program_ = make_program_();
  *out = RaceLog();
  SpPlusDetector detector(out);
  // Sampling wraps each per-spec detector with a filter seeded from the
  // spec's describe() string — deterministic and jobs-invariant.
  Tool* tool = &detector;
  std::unique_ptr<SamplingTool> sampler;
  if (options_.sampling.enabled) {
    SamplingConfig cfg = options_.sampling;
    cfg.seed = sampling_seed_for_spec(cfg.seed, family_[i]->describe());
    sampler = std::make_unique<SamplingTool>(&detector, cfg);
    tool = sampler.get();
  }
  prof::Phase spec_phase("spec");
  const std::uint64_t t0 = metrics::now_nanos();
  {
    metrics::PhaseTimer timer(metrics::Phase::kExecute);
    prof::Phase detect_phase("detect");
    run_serial(program_, tool, family_[i].get());
  }
  return {true, metrics::now_nanos() - t0};
}

SpecExecutor::RunOutcome SpecExecutor::run_prefix(std::size_t i,
                                                  RaceLog* out) {
  if (!program_) program_ = make_program_();
  prof::Phase spec_phase("spec");
  const std::size_t d = has_last_ ? divergence_depth(*family_[i], trail_) : 0;
  if (has_last_) {
    metrics::record(metrics::Histogram::kDivergenceDepth, d);
  }
  if (has_last_ && d == trail_.size()) {
    // Every decision matches the previous run: the execution would be
    // identical, so its (unstamped) log is reused verbatim.  This is common
    // in coverage families, whose members often differ only on contexts the
    // program never reaches.  Accounted by the caller so spec_runs ==
    // kSpecRuns + kSweepDedupReuses stays exact.
    *out = last_log_;
    return {false, 0};
  }
  // Checkpoints past the divergence belong to the abandoned suffix.
  {
    std::size_t keep = ckpts_.size();
    while (keep > 0 && ckpts_[keep - 1].engine.point > d) --keep;
    drop_checkpoints(keep);
  }
  *out = RaceLog();
  cur_out_ = out;
  const auto hook = [this](std::size_t idx) { on_point(idx); };
  const std::uint64_t t0 = metrics::now_nanos();
  {
    metrics::PhaseTimer timer(metrics::Phase::kExecute);
    bool fresh = ckpts_.empty();
    if (!fresh) {
      PrefixCheckpoint& ck = ckpts_.back();
      trail_.resize(d);
      *out = ck.log;
      std::unique_ptr<Tool> detector = ck.tool->fork(out);
      metrics::bump(metrics::Counter::kSweepForks);
      SerialEngine engine(detector.get(), family_[i].get());
      eng_ = &engine;
      cur_tool_ = detector.get();
      engine.set_decision_trail(&trail_);
      engine.set_point_hook(hook);
      SerialEngine::ResumePlan plan;
      plan.replay = &trail_;
      plan.replay_count = d;
      plan.live_from = ck.engine.point;
      // Verified (then dropped) before the hook can grow `ckpts_` and
      // invalidate this pointer.
      plan.expect = &ck.engine;
      try {
        prof::Phase resume_phase("resume");
        engine.resume_from(program_, plan);
      } catch (const ResumeDiverged&) {
        // The re-executed prefix did not regenerate the checkpointed state
        // (go_live verification, serial_engine.hpp): the program is not an
        // address-stable pure function of the decisions, so its runs cannot
        // share prefixes.  Degrade to rerun semantics for this member: drop
        // every checkpoint (their forks describe executions this program
        // cannot reproduce) and the possibly dirtied instance, and run the
        // member fresh.  Correctness is preserved — only the speedup is
        // lost — and the fallback is visible as kSweepResumeFallbacks in
        // rader.report.
        metrics::bump(metrics::Counter::kSweepResumeFallbacks);
        drop_checkpoints(0);
        *out = RaceLog();
        program_ = make_program_();
        fresh = true;
      }
    }
    if (fresh) {
      // No shared prefix survives (first member, divergence at the root,
      // stride left no checkpoint this shallow, or a resume fallback):
      // fresh run.
      trail_.clear();
      SpPlusDetector detector(out);
      SerialEngine engine(&detector, family_[i].get());
      eng_ = &engine;
      cur_tool_ = &detector;
      engine.set_decision_trail(&trail_);
      engine.set_point_hook(hook);
      prof::Phase detect_phase("detect");
      engine.run(program_);
    }
  }
  const std::uint64_t nanos = metrics::now_nanos() - t0;
  // The dedup shortcut needs the log as the run produced it, BEFORE
  // stamp_found_under seeds found_under/eliciting_specs.
  last_log_ = *out;
  has_last_ = true;
  return {true, nanos};
}

}  // namespace sweep_internal

ProgramFactory shared_program(std::function<void()> program) {
  return [program = std::move(program)] { return program; };
}

SweepResult sweep_family(
    const ProgramFactory& make_program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    const SweepOptions& options) {
  if (options.isolation == SweepIsolation::kProcs) {
    // Crash-isolated backend (core/sweep_isolated.cpp): same per-spec
    // execution code (SpecExecutor), but sharded across sandboxed child
    // processes under a retry/quarantine supervisor.
    return sweep_internal::sweep_family_isolated(make_program, family,
                                                 options);
  }
  SweepResult result;
  const std::size_t total = family.size();
  const std::size_t n =
      (options.budget != 0 && options.budget < total)
          ? static_cast<std::size_t>(options.budget)
          : total;
  if (n == 0) {
    result.specs_skipped = total;
    return result;
  }

  unsigned threads = options.threads != 0
                         ? options.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));

  // One log per family member, merged in family order afterwards: the sweep
  // result is deterministic and identical to the serial sweep's regardless
  // of thread count or scheduling.
  std::vector<RaceLog> per_spec(n);
  std::vector<char> ran(n, 0);
  std::vector<metrics::Snapshot> worker_metrics(threads);
  std::vector<prof::Profiler> worker_profs(threads);
  // Telemetry counters sampled by the progress monitor (and mirrored by the
  // per-worker metrics snapshots merged into SweepResult::metrics).
  std::vector<std::atomic<std::uint64_t>> worker_done(threads);
  std::atomic<std::uint64_t> racy_specs{0};
  std::atomic<std::size_t> next{0};
  // Live observability surface: workers overwrite their SharedSnapshot
  // slot with their current totals after every spec, and keep their
  // current spec handle in the in-flight table.  The monitor thread, the
  // watchdog, and a fatal-signal handler (support/crash.hpp) read both
  // wait-free; the final SweepResult::metrics still folds the worker
  // registries directly, so live sampling never changes the result.
  metrics::SharedSnapshot shared(threads);
  crash::InflightTable inflight;
  {
    crash::PostmortemSources sources;
    sources.metrics = &shared;
    sources.inflight = &inflight;
    sources.trace_session = trace::session();
    sources.activity = "sweep";
    crash::set_sources(sources);
  }
  // Lowest family index whose run reported a race (n = none yet).  Under
  // stop_after_first_race, "first" means lowest FAMILY INDEX, not first in
  // wall-clock order: the result is the prefix [0, first_racy], so it is
  // invariant across thread counts.  The value only decreases; a skipped
  // index never runs, so it can never become first_racy itself.
  std::atomic<std::size_t> first_racy{n};

  // Post-run bookkeeping shared by both strategies: stamp the eliciting
  // spec, publish completion (counter, live snapshot slot, in-flight
  // clear), and (stop-first) lower the racy-index minimum.
  const auto finish_spec = [&](unsigned widx, std::size_t i) {
    per_spec[i].stamp_found_under(family[i]->describe());
    ran[i] = 1;
    if (metrics::Registry* r = metrics::current()) {
      shared.publish(widx, r->snapshot());
    }
    inflight.clear(widx);
    worker_done[widx].fetch_add(1, std::memory_order_relaxed);
    if (per_spec[i].any()) {
      racy_specs.fetch_add(1, std::memory_order_relaxed);
    }
    if (options.stop_after_first_race && per_spec[i].any()) {
      std::size_t cur = first_racy.load(std::memory_order_relaxed);
      while (i < cur && !first_racy.compare_exchange_weak(
                            cur, i, std::memory_order_relaxed)) {
      }
    }
  };

  // Publish the spec a worker is about to execute so a hang or crash names
  // it in the post-mortem.
  const auto begin_spec = [&](unsigned widx, std::size_t i) {
    char text[crash::InflightTable::kChars];
    std::snprintf(text, sizeof text, "spec[%zu] %s", i,
                  family[i]->describe().c_str());
    inflight.set(widx, text);
  };

  // Per-spec accounting shared by both strategies (see the contract in
  // core/sweep_internal.hpp: these bumps are the caller's job, not the
  // executor's, so the isolated sweep's supervisor can account only the
  // specs whose results actually arrived).
  const auto account_spec = [](const sweep_internal::SpecExecutor::RunOutcome&
                                   outcome) {
    if (outcome.executed) {
      metrics::record(metrics::Histogram::kSpecRunNanos, outcome.nanos);
      metrics::bump(metrics::Counter::kSpecRuns);
    } else {
      metrics::bump(metrics::Counter::kSweepDedupReuses);
    }
  };

  const auto rerun_worker = [&](unsigned widx,
                                sweep_internal::SpecExecutor& exec) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      // Indices above the current minimum racy index can never join the
      // result prefix (first_racy is monotonically decreasing), so abandon
      // them; indices at or below it always run, which guarantees the whole
      // prefix [0, final first_racy] executes at every thread count.
      if (i > first_racy.load(std::memory_order_relaxed)) break;
      begin_spec(widx, i);
      account_spec(exec.run(i, &per_spec[i]));
      finish_spec(widx, i);
    }
  };

  const auto prefix_worker = [&](unsigned widx,
                                 sweep_internal::SpecExecutor& exec) {
    // Claim ascending chunks instead of single indices: lexicographic
    // families are emitted in trie DFS order, so neighbouring indices share
    // the deepest prefixes, and those only pay off when the SAME worker
    // (whose trail and checkpoints describe the previous member) runs them.
    constexpr std::size_t kChunk = 8;
    for (;;) {
      const std::size_t start =
          next.fetch_add(kChunk, std::memory_order_relaxed);
      if (start >= n) break;
      const std::size_t end = std::min(start + kChunk, n);
      bool abandoned = false;
      for (std::size_t i = start; i < end; ++i) {
        // Same stop-first contract as the rerun worker.  Later indices in
        // this chunk — and any chunk claimed afterwards — are higher still,
        // so abandoning the whole worker is safe.
        if (i > first_racy.load(std::memory_order_relaxed)) {
          abandoned = true;
          break;
        }
        begin_spec(widx, i);
        account_spec(exec.run(i, &per_spec[i]));
        finish_spec(widx, i);
      }
      if (abandoned) break;
    }
  };

  const bool prefix = options.strategy == SweepStrategy::kPrefix &&
                      !options.sampling.enabled;
  const auto worker = [&](unsigned widx) {
    // Bound the thread's view-arena floor: the worker's program fixtures
    // allocate outside runs (promoting the floor), and without this a
    // long-lived process sweeping repeatedly would grow every worker
    // thread's arena monotonically.  Declared first so it is destroyed
    // last — after the program instances (and their views) are gone.
    view_arena::Scope arena_scope;
    metrics::Registry reg;
    metrics::Scope scope(&reg);
    prof::Scope pscope(&worker_profs[widx]);
    // When a tracing session is active, each sweep worker records into its
    // own buffer ("sweep-wN") — one Chrome-trace process per worker.
    trace::Session* const tsession = trace::session();
    trace::ThreadScope tscope(
        tsession != nullptr
            ? tsession->make_buffer("sweep-w" + std::to_string(widx))
            : trace::buffer());
    {
      sweep_internal::SpecExecutor exec(make_program, family, options);
      if (prefix) {
        prefix_worker(widx, exec);
      } else {
        rerun_worker(widx, exec);
      }
    }
    // Quiescent totals: the monitor's final JSONL sample reads these slots
    // after the join, so publish everything one last time.
    shared.publish(widx, reg.snapshot());
    worker_metrics[widx] = reg.snapshot();
  };

  // The sweep's own profiler aggregates the workers' phase trees under one
  // "sweep" node, then forwards to the caller's profiler (if any) — the
  // same absorb-at-join shape as the metrics registries.
  prof::Profiler* const outer_prof = prof::current();
  prof::Profiler sweep_prof;
  metrics::Registry merge_reg;
  metrics::Registry monitor_reg;
  {
    prof::Scope pscope(&sweep_prof);
    prof::Phase sweep_phase("sweep");
    {
      // Scoped so the monitor's destructor (which prints the final summary
      // line and writes the final JSONL sample) runs as soon as the workers
      // have joined.
      std::unique_ptr<SweepMonitor> monitor;
      if (SweepMonitor::wanted(options)) {
        monitor = std::make_unique<SweepMonitor>(
            options, n, &worker_done, &racy_specs, &shared, &monitor_reg);
      }
      if (threads <= 1) {
        worker(0);
      } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
        for (auto& th : pool) th.join();
      }
    }
    for (const auto& wp : worker_profs) sweep_prof.absorb(wp.root());

    // Merge exactly the deterministic prefix: everything up to and
    // including the lowest racy index (or the whole budgeted family when no
    // run raced).  Runs beyond the prefix — workers that were mid-flight on
    // a higher index when the race landed — are discarded, so race
    // identity, spec_runs, and specs_skipped are byte-identical at every
    // thread count.
    const std::size_t lowest = first_racy.load(std::memory_order_relaxed);
    const std::size_t limit = lowest < n ? lowest + 1 : n;
    {
      metrics::Scope scope(&merge_reg);
      metrics::PhaseTimer timer(metrics::Phase::kMerge);
      prof::Phase merge_phase("merge");
      for (std::size_t i = 0; i < limit; ++i) {
        RADER_CHECK_MSG(ran[i] != 0, "sweep prefix member did not run");
        result.log.merge(per_spec[i]);
        ++result.spec_runs;
      }
    }
  }
  crash::clear_sources();
  result.specs_skipped = total - result.spec_runs;
  for (const auto& wm : worker_metrics) result.metrics.add(wm);
  result.metrics.add(merge_reg.snapshot());
  result.metrics.add(monitor_reg.snapshot());
  // Forward the aggregates to the caller's registry/profiler (if installed)
  // so an outer Scope sees probe + sweep + merge in one snapshot.
  if (metrics::Registry* outer = metrics::current()) {
    outer->absorb(result.metrics);
  }
  if (outer_prof != nullptr) {
    outer_prof->absorb(sweep_prof.root());
  }
  return result;
}

}  // namespace rader
