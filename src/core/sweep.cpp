#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/spplus.hpp"
#include "runtime/run.hpp"

namespace rader {

ProgramFactory shared_program(std::function<void()> program) {
  return [program = std::move(program)] { return program; };
}

SweepResult sweep_family(
    const ProgramFactory& make_program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    const SweepOptions& options) {
  SweepResult result;
  const std::size_t total = family.size();
  const std::size_t n =
      (options.budget != 0 && options.budget < total)
          ? static_cast<std::size_t>(options.budget)
          : total;
  if (n == 0) {
    result.specs_skipped = total;
    return result;
  }

  unsigned threads = options.threads != 0
                         ? options.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));

  // One log per family member, merged in family order afterwards: the sweep
  // result is deterministic and identical to the serial sweep's regardless
  // of thread count or scheduling.
  std::vector<RaceLog> per_spec(n);
  std::vector<char> ran(n, 0);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};

  const auto worker = [&] {
    std::function<void()> program;  // this worker's own program instance
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      if (!program) program = make_program();
      SpPlusDetector detector(&per_spec[i]);
      run_serial(program, &detector, family[i].get());
      per_spec[i].stamp_found_under(family[i]->describe());
      ran[i] = 1;
      if (options.stop_after_first_race && per_spec[i].any()) {
        stop.store(true, std::memory_order_relaxed);
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (ran[i] == 0) continue;
    result.log.merge(per_spec[i]);
    ++result.spec_runs;
  }
  result.specs_skipped = total - result.spec_runs;
  return result;
}

}  // namespace rader
