#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/spplus.hpp"
#include "runtime/run.hpp"
#include "support/common.hpp"

namespace rader {

ProgramFactory shared_program(std::function<void()> program) {
  return [program = std::move(program)] { return program; };
}

SweepResult sweep_family(
    const ProgramFactory& make_program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    const SweepOptions& options) {
  SweepResult result;
  const std::size_t total = family.size();
  const std::size_t n =
      (options.budget != 0 && options.budget < total)
          ? static_cast<std::size_t>(options.budget)
          : total;
  if (n == 0) {
    result.specs_skipped = total;
    return result;
  }

  unsigned threads = options.threads != 0
                         ? options.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));

  // One log per family member, merged in family order afterwards: the sweep
  // result is deterministic and identical to the serial sweep's regardless
  // of thread count or scheduling.
  std::vector<RaceLog> per_spec(n);
  std::vector<char> ran(n, 0);
  std::vector<metrics::Snapshot> worker_metrics(threads);
  std::atomic<std::size_t> next{0};
  // Lowest family index whose run reported a race (n = none yet).  Under
  // stop_after_first_race, "first" means lowest FAMILY INDEX, not first in
  // wall-clock order: the result is the prefix [0, first_racy], so it is
  // invariant across thread counts.  The value only decreases; a skipped
  // index never runs, so it can never become first_racy itself.
  std::atomic<std::size_t> first_racy{n};

  const auto worker = [&](unsigned widx) {
    metrics::Registry reg;
    metrics::Scope scope(&reg);
    std::function<void()> program;  // this worker's own program instance
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      // Indices above the current minimum racy index can never join the
      // result prefix (first_racy is monotonically decreasing), so abandon
      // them; indices at or below it always run, which guarantees the whole
      // prefix [0, final first_racy] executes at every thread count.
      if (i > first_racy.load(std::memory_order_relaxed)) break;
      if (!program) program = make_program();
      SpPlusDetector detector(&per_spec[i]);
      {
        metrics::PhaseTimer timer(metrics::Phase::kExecute);
        run_serial(program, &detector, family[i].get());
      }
      metrics::bump(metrics::Counter::kSpecRuns);
      per_spec[i].stamp_found_under(family[i]->describe());
      ran[i] = 1;
      if (options.stop_after_first_race && per_spec[i].any()) {
        std::size_t cur = first_racy.load(std::memory_order_relaxed);
        while (i < cur && !first_racy.compare_exchange_weak(
                              cur, i, std::memory_order_relaxed)) {
        }
      }
    }
    worker_metrics[widx] = reg.snapshot();
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  // Merge exactly the deterministic prefix: everything up to and including
  // the lowest racy index (or the whole budgeted family when no run raced).
  // Runs beyond the prefix — workers that were mid-flight on a higher index
  // when the race landed — are discarded, so race identity, spec_runs, and
  // specs_skipped are byte-identical at every thread count.
  const std::size_t lowest = first_racy.load(std::memory_order_relaxed);
  const std::size_t limit = lowest < n ? lowest + 1 : n;
  metrics::Registry merge_reg;
  {
    metrics::Scope scope(&merge_reg);
    metrics::PhaseTimer timer(metrics::Phase::kMerge);
    for (std::size_t i = 0; i < limit; ++i) {
      RADER_CHECK_MSG(ran[i] != 0, "sweep prefix member did not run");
      result.log.merge(per_spec[i]);
      ++result.spec_runs;
    }
  }
  result.specs_skipped = total - result.spec_runs;
  for (const auto& wm : worker_metrics) result.metrics.add(wm);
  result.metrics.add(merge_reg.snapshot());
  // Forward the aggregate to the caller's registry (if one is installed) so
  // an outer Scope sees probe + sweep + merge in one snapshot.
  if (metrics::Registry* outer = metrics::current()) {
    outer->absorb(result.metrics);
  }
  return result;
}

}  // namespace rader
