#include "tool/sampling.hpp"

#include <algorithm>

#include "support/common.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"

namespace rader {

namespace {

// Distinguishes the per-reducer sampling stream from the per-granule one
// (reducer ids are small integers that would otherwise collide with the
// first few granules of a zero-based heap).
constexpr std::uint64_t kReducerSalt = 0x7265647563657273ull;  // "reducers"

std::uint64_t threshold_for(double rate) {
  if (rate <= 0.0) return 0;
  // rate < 1 here (>= 1 short-circuits to all_); 2^64 * rate therefore
  // fits, but clamp against FP rounding right at the boundary.
  const double scaled = rate * 18446744073709551616.0;  // 2^64
  if (scaled >= 18446744073709551615.0) {
    return ~std::uint64_t{0};
  }
  return static_cast<std::uint64_t>(scaled);
}

}  // namespace

std::uint64_t sampling_seed_for_spec(std::uint64_t seed,
                                     std::string_view spec_describe) {
  return hash_combine(mix64(seed), fnv1a(spec_describe));
}

SamplingTool::SamplingTool(Tool* inner, const SamplingConfig& config)
    : inner_(inner),
      threshold_(threshold_for(config.rate)),
      seed_(config.seed),
      block_bits_(config.block_bits),
      all_(config.rate >= 1.0) {
  RADER_CHECK_MSG(inner_ != nullptr, "SamplingTool needs an inner tool");
}

SamplingTool::SamplingTool(std::unique_ptr<Tool> owned,
                           const SamplingConfig& config)
    : SamplingTool(owned.get(), config) {
  owned_ = std::move(owned);
}

std::unique_ptr<SamplingTool> SamplingTool::adopt(std::unique_ptr<Tool> inner,
                                                  const SamplingConfig& config) {
  return std::unique_ptr<SamplingTool>(
      new SamplingTool(std::move(inner), config));
}

bool SamplingTool::sampled(std::uintptr_t b) const {
  return mix64(static_cast<std::uint64_t>(b) ^ seed_) < threshold_;
}

bool SamplingTool::sampled_reducer(ReducerId h) const {
  return mix64(static_cast<std::uint64_t>(h) ^ seed_ ^ kReducerSalt) <
         threshold_;
}

void SamplingTool::on_access(AccessKind kind, std::uintptr_t addr,
                             std::size_t size, bool view_aware, ViewId vid,
                             SrcTag tag) {
  // P >= 1 (and degenerate sizes): VERBATIM forwarding — no splitting, no
  // counters — so a P=1 sampled run is byte-identical to an unsampled one.
  if (all_ || size == 0) {
    inner_->on_access(kind, addr, size, view_aware, vid, tag);
    return;
  }
  const std::uintptr_t last_byte = access_last_byte(addr, size);
  const std::uintptr_t first = addr >> block_bits_;
  const std::uintptr_t last = last_byte >> block_bits_;
  if (first == last) {
    // Fast path: the access fits one sampling block (the common case with
    // page-sized blocks) — one hash, forward or drop whole.
    if (sampled(first)) {
      metrics::bump(metrics::Counter::kSampledAccesses);
      metrics::record(metrics::Histogram::kSampledRunBytes, size);
      inner_->on_access(kind, addr, size, view_aware, vid, tag);
    } else {
      metrics::bump(metrics::Counter::kSampledDropped);
    }
    return;
  }
  const std::uintptr_t block_mask = (std::uintptr_t{1} << block_bits_) - 1;
  // Walk the covered sampling blocks (wraparound-safe: `last` may be the
  // top index) and forward each maximal run of consecutive sampled blocks
  // as one sub-access with its TRUE byte range.
  std::uintptr_t run_start = 0;
  bool in_run = false;
  const auto flush = [&](std::uintptr_t run_end) {
    const std::uintptr_t sub_addr = std::max(addr, run_start << block_bits_);
    const std::uintptr_t sub_last =
        std::min(last_byte, (run_end << block_bits_) | block_mask);
    const std::size_t sub_size =
        static_cast<std::size_t>(sub_last - sub_addr) + 1;
    metrics::bump(metrics::Counter::kSampledAccesses);
    metrics::record(metrics::Histogram::kSampledRunBytes, sub_size);
    inner_->on_access(kind, sub_addr, sub_size, view_aware, vid, tag);
  };
  for (std::uintptr_t b = first;; ++b) {
    if (sampled(b)) {
      if (!in_run) {
        run_start = b;
        in_run = true;
      }
    } else {
      metrics::bump(metrics::Counter::kSampledDropped);
      if (in_run) {
        flush(b - 1);
        in_run = false;
      }
    }
    if (b == last) break;
  }
  if (in_run) flush(last);
}

void SamplingTool::on_reducer_op(ReducerOp op, ReducerId h, SrcTag tag) {
  if (all_ || sampled_reducer(h)) inner_->on_reducer_op(op, h, tag);
}

std::unique_ptr<Tool> SamplingTool::fork(RaceLog* log) const {
  std::unique_ptr<Tool> inner_fork = inner_->fork(log);
  if (inner_fork == nullptr) return nullptr;
  SamplingConfig config;
  config.enabled = true;
  config.rate = all_ ? 1.0 : 0.0;  // threshold_/seed_ re-set below
  config.seed = seed_;
  config.block_bits = block_bits_;
  auto copy = std::unique_ptr<SamplingTool>(
      new SamplingTool(std::move(inner_fork), config));
  copy->threshold_ = threshold_;
  copy->all_ = all_;
  return copy;
}

}  // namespace rader
