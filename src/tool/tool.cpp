#include "tool/tool.hpp"

// Tool and ToolChain are header-only; this translation unit pins them.
