// Tool interface: the instrumentation boundary between the runtime and the
// detection algorithms.
//
// The paper's Rader prototype "uses compiler instrumentation to track memory
// accesses and parallel control dependencies" (GCC hooks for parallel
// control, ThreadSanitizer hooks for reads/writes).  This repository replaces
// the compiler with a library boundary that delivers the *same event stream*:
// the serial engine invokes one Tool callback per parallel-control event,
// per simulated steal, per reduce operation, per reducer operation, and per
// annotated memory access.
//
// A detector is simply a Tool.  The "empty tool" used as the Figure 8
// baseline is an instance of this base class with every callback left as the
// default no-op, so a run with it measures pure instrumentation cost.
//
// Event vocabulary (mirrors Sections 3, 5 of the paper):
//   on_frame_enter / on_frame_return  — F spawns/calls G; G returns to F.
//                                       Reduce operations enter as frames of
//                                       kind kReduce.
//   on_sync                           — F executes cilk_sync (including the
//                                       implicit sync before every return).
//   on_steal                          — a continuation of F was "stolen" per
//                                       the steal specification; a fresh view
//                                       ID was minted.
//   on_reduce                         — the runtime merged the two newest
//                                       view epochs (SP+ pops its P stack
//                                       here, *before* the user Reduce code
//                                       runs as a kReduce frame).
//   on_access                         — an annotated read/write, tagged with
//                                       whether it executed view-aware
//                                       (inside Update/CreateIdentity/Reduce)
//                                       and with the current view ID.
//   on_reducer_op                     — reducer lifecycle/reads/updates;
//                                       kCreate/kSetValue/kGetValue/kDestroy
//                                       are the paper's "reducer-reads".
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/types.hpp"

namespace rader {

class RaceLog;  // core/race_report.hpp; tools are below the core layer

class Tool {
 public:
  Tool() = default;
  virtual ~Tool() = default;

  Tool(const Tool&) = delete;
  Tool& operator=(const Tool&) = delete;

  /// Deep-copy this tool's detection state mid-run, wiring the clone's
  /// reports to `log` (may be nullptr for a frozen snapshot that is only
  /// ever re-forked, never fed events).  Mutating either side after the
  /// fork never affects the other: forks share shadow pages copy-on-write
  /// (shadow::ShadowSpace::fork) but nothing mutable.  This is the detector
  /// half of the prefix-sharing sweep's checkpoints (core/sweep.hpp).
  /// Default: forking unsupported; returns nullptr.
  virtual std::unique_ptr<Tool> fork(RaceLog* log) const {
    (void)log;
    return nullptr;
  }

  /// A root computation is about to run / has finished.
  virtual void on_run_begin() {}
  virtual void on_run_end() {}

  /// Frame `frame` was entered from `parent` (kInvalidFrame for the root).
  /// `vid` is the view ID current at entry.
  virtual void on_frame_enter(FrameId frame, FrameId parent, FrameKind kind,
                              ViewId vid) {
    (void)frame, (void)parent, (void)kind, (void)vid;
  }

  /// Frame `frame` (entered with `kind`) returned to `parent`.  The frame has
  /// already executed its implicit sync.
  virtual void on_frame_return(FrameId frame, FrameId parent, FrameKind kind) {
    (void)frame, (void)parent, (void)kind;
  }

  /// Frame `frame` executed a cilk_sync (all simulated reduces for the sync
  /// block have already been delivered).
  virtual void on_sync(FrameId frame) { (void)frame; }

  /// The continuation at `cont_index` (within `frame`'s current sync block)
  /// was stolen; subsequent strands run on fresh view `new_vid`.
  virtual void on_steal(FrameId frame, std::uint32_t cont_index,
                        ViewId new_vid) {
    (void)frame, (void)cont_index, (void)new_vid;
  }

  /// The two newest view epochs of `frame` merged: `right_vid` was reduced
  /// into `left_vid` (which survives).  Delivered before the user Reduce code
  /// (if any) runs in kReduce frames.
  virtual void on_reduce(FrameId frame, ViewId left_vid, ViewId right_vid) {
    (void)frame, (void)left_vid, (void)right_vid;
  }

  /// Annotated memory access of `size` bytes at `addr` by the current strand.
  /// `view_aware` is true inside Update / CreateIdentity / Reduce execution;
  /// `vid` is the view ID associated with the executing strand.
  virtual void on_access(AccessKind kind, std::uintptr_t addr,
                         std::size_t size, bool view_aware, ViewId vid,
                         SrcTag tag) {
    (void)kind, (void)addr, (void)size, (void)view_aware, (void)vid, (void)tag;
  }

  /// Reducer operation on reducer `h` by the current strand.
  virtual void on_reducer_op(ReducerOp op, ReducerId h, SrcTag tag) {
    (void)op, (void)h, (void)tag;
  }

  /// Memory [addr, addr+size) was freed: any recorded accesses to it are
  /// stale and a later allocation may legitimately reuse the addresses.
  /// Emitted when the runtime destroys a reduced-away view, and by user
  /// code via rader::shadow_clear — the analog of a race detector's
  /// free()/delete interception.
  virtual void on_clear(std::uintptr_t addr, std::size_t size) {
    (void)addr, (void)size;
  }
};

/// Fan-out tool: forwards every event to each registered tool in order.
/// Used by tests to run a detector and the DAG recorder side by side.
class ToolChain final : public Tool {
 public:
  void add(Tool* t) { tools_.push_back(t); }

  void on_run_begin() override {
    for (Tool* t : tools_) t->on_run_begin();
  }
  void on_run_end() override {
    for (Tool* t : tools_) t->on_run_end();
  }
  void on_frame_enter(FrameId f, FrameId p, FrameKind k, ViewId v) override {
    for (Tool* t : tools_) t->on_frame_enter(f, p, k, v);
  }
  void on_frame_return(FrameId f, FrameId p, FrameKind k) override {
    for (Tool* t : tools_) t->on_frame_return(f, p, k);
  }
  void on_sync(FrameId f) override {
    for (Tool* t : tools_) t->on_sync(f);
  }
  void on_steal(FrameId f, std::uint32_t c, ViewId v) override {
    for (Tool* t : tools_) t->on_steal(f, c, v);
  }
  void on_reduce(FrameId f, ViewId l, ViewId r) override {
    for (Tool* t : tools_) t->on_reduce(f, l, r);
  }
  void on_access(AccessKind k, std::uintptr_t a, std::size_t s, bool va,
                 ViewId v, SrcTag tag) override {
    for (Tool* t : tools_) t->on_access(k, a, s, va, v, tag);
  }
  void on_reducer_op(ReducerOp op, ReducerId h, SrcTag tag) override {
    for (Tool* t : tools_) t->on_reducer_op(op, h, tag);
  }
  void on_clear(std::uintptr_t addr, std::size_t size) override {
    for (Tool* t : tools_) t->on_clear(addr, size);
  }

 private:
  std::vector<Tool*> tools_;
};

/// Capability surface for tools attached to the PARALLEL engine
/// (sched/parallel_engine.hpp).  The engine records per-segment event shards
/// during a real work-stealing execution and replays the spliced stream —
/// byte-identical to a serial no-steal run — through the Tool callbacks on
/// worker 0 (tool/shard.hpp).  The callbacks themselves are therefore never
/// invoked concurrently; a serial detector works unchanged behind this
/// surface (core/peerset.hpp's ParallelPeerSet).
///
/// Capabilities let the engine skip recording event classes the tool will
/// ignore: memory accesses dominate event volume, and Peer-Set — the first
/// parallel-backend detector — never consumes them.
class ParallelTool : public Tool {
 public:
  /// Opt in to kAccess / kClear shard events.  When false (the default) the
  /// engine's access() / clear_shadow() hooks stay near-free.  Recorded
  /// accesses are deduplicated per worker strand via a private
  /// shadow::ShadowSpace shard: at least one event per (strand, location,
  /// kind) is delivered, but same-strand repeats may be dropped — exact
  /// multiplicity is not preserved.
  virtual bool wants_accesses() const { return false; }
};

/// The Figure-8 baseline: identical instrumentation, empty callbacks.
using EmptyTool = Tool;

}  // namespace rader
