#include "tool/tracked.hpp"

// Header-only; this translation unit pins the header's compilation.
