// Event shards: how the parallel engine feeds serial detectors.
//
// The serial engine streams Tool callbacks in the computation's depth-first
// (serial-projection) order as a side effect of executing in that order.  A
// work-stealing execution visits strands in schedule-dependent order, so the
// parallel engine cannot call a serial detector directly — instead each
// execution segment records the SCHEDULE-INDEPENDENT events of its strands
// into a private append-only shard, and joins splice child shards into the
// parent's shard at the exact position of the spawn, mirroring the engine's
// positional hypermap fold:
//
//     shard(F) = ev0 ⊕ shard(child₁) ⊕ seg₁ ⊕ shard(child₂) ⊕ seg₂ ⊕ …
//
// Splicing at every sync re-creates the depth-first event order regardless
// of which workers executed what, so replaying the root frame's shard
// through a Tool delivers the byte-identical callback sequence of a serial
// NO-STEAL run over the same DAG (the stream Peer-Set is exact on,
// Theorem 4).  Shard events therefore carry no frame or view IDs — those are
// serial-order artifacts, minted by the replayer below in depth-first order
// exactly as runtime/serial_engine.cpp would have.
//
// Reducer IDs need the same treatment: the parallel engine numbers reducers
// in first-REGISTRATION order (racy, schedule-dependent), while the serial
// engine numbers them in first-CONTACT order of the depth-first execution.
// Events carry the engine's slot number, and the replayer renumbers slots in
// order of first appearance in the spliced stream; kBind markers (recorded
// at every view lookup, the serial engine's one silent binding point) pin
// that order even for reducers whose first contact produces no Tool event.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/types.hpp"

namespace rader {

class Tool;

/// One recorded instrumentation event.  A tagged union kept trivially
/// copyable: shards are bulk-spliced with vector::insert on the join path.
struct ShardEvent {
  enum class Kind : std::uint8_t {
    kFrameEnter,   // a = FrameKind
    kFrameReturn,  // a = FrameKind
    kSync,         // frame executed a non-trivial sync
    kBind,         // silent first-contact marker; slot = engine reducer slot
    kReducerOp,    // a = ReducerOp; slot; label
    kAccess,       // a = AccessKind; addr/size/view_aware; label
    kClear,        // addr/size
  };

  Kind kind;
  std::uint8_t a = 0;        // FrameKind / ReducerOp / AccessKind payload
  bool view_aware = false;   // kAccess: inside Update user code
  ReducerId slot = kInvalidReducer;  // engine reducer slot (kBind/kReducerOp)
  std::uintptr_t addr = 0;   // kAccess / kClear
  std::uint32_t size = 0;    // kAccess / kClear
  const char* label = "";    // SrcTag (string literals; outlive the run)
};

/// A segment's recorded events, in that segment's execution order.
using EventShard = std::vector<ShardEvent>;

/// Replays spliced shards through a serial Tool, minting frame and reducer
/// IDs in depth-first order so the delivered callback stream is
/// byte-identical to a serial no-steal run's.
///
/// Protocol (all on one thread — worker 0 of the parallel engine):
///   begin();            // on_run_begin + root on_frame_enter
///   feed(shard); ...    // any prefix-preserving chunking of the root shard
///   end();              // root on_frame_return + on_run_end
///
/// feed() may be called many times: the engine drains the root frame's
/// shard at every root-level sync, so detector state and shard memory stay
/// proportional to the live computation, not the whole run.
class ShardReplayer {
 public:
  explicit ShardReplayer(Tool* tool) : tool_(tool) {}

  void begin();
  void feed(const EventShard& shard);
  void end();

 private:
  ReducerId map_slot(ReducerId slot);

  Tool* tool_;
  FrameId next_frame_ = 0;
  std::vector<FrameId> frame_stack_;   // open frames, serial IDs
  std::vector<ReducerId> slot_to_id_;  // engine slot -> serial reducer id
  ReducerId next_reducer_ = 0;
};

}  // namespace rader
