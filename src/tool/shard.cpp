#include "tool/shard.hpp"

#include "support/common.hpp"
#include "tool/tool.hpp"

namespace rader {

// The replayed stream simulates a steal-free execution, which lives entirely
// in the base view epoch: every strand sees view ID 0, exactly like
// SerialEngine under spec::NoSteal (epochs_.top_vid() is the base epoch for
// the whole run).
namespace {
constexpr ViewId kBaseView = 0;
}  // namespace

void ShardReplayer::begin() {
  next_frame_ = 0;
  frame_stack_.clear();
  slot_to_id_.clear();
  next_reducer_ = 0;
  tool_->on_run_begin();
  const FrameId root = next_frame_++;
  tool_->on_frame_enter(root, kInvalidFrame, FrameKind::kRoot, kBaseView);
  frame_stack_.push_back(root);
}

ReducerId ShardReplayer::map_slot(ReducerId slot) {
  RADER_DCHECK(slot != kInvalidReducer);
  if (slot >= slot_to_id_.size()) {
    slot_to_id_.resize(slot + 1, kInvalidReducer);
  }
  if (slot_to_id_[slot] == kInvalidReducer) {
    slot_to_id_[slot] = next_reducer_++;
  }
  return slot_to_id_[slot];
}

void ShardReplayer::feed(const EventShard& shard) {
  for (const ShardEvent& e : shard) {
    switch (e.kind) {
      case ShardEvent::Kind::kFrameEnter: {
        const FrameId id = next_frame_++;
        tool_->on_frame_enter(id, frame_stack_.back(),
                              static_cast<FrameKind>(e.a), kBaseView);
        frame_stack_.push_back(id);
        break;
      }
      case ShardEvent::Kind::kFrameReturn: {
        RADER_CHECK_MSG(frame_stack_.size() > 1,
                        "shard replay underflowed the frame stack");
        const FrameId id = frame_stack_.back();
        frame_stack_.pop_back();
        tool_->on_frame_return(id, frame_stack_.back(),
                               static_cast<FrameKind>(e.a));
        break;
      }
      case ShardEvent::Kind::kSync:
        tool_->on_sync(frame_stack_.back());
        break;
      case ShardEvent::Kind::kBind:
        // First contact may carry no Tool event (a bare view lookup); the
        // marker exists purely to pin the serial renumbering order.
        (void)map_slot(e.slot);
        break;
      case ShardEvent::Kind::kReducerOp:
        tool_->on_reducer_op(static_cast<ReducerOp>(e.a), map_slot(e.slot),
                             SrcTag{e.label});
        break;
      case ShardEvent::Kind::kAccess:
        tool_->on_access(static_cast<AccessKind>(e.a), e.addr, e.size,
                         e.view_aware, kBaseView, SrcTag{e.label});
        break;
      case ShardEvent::Kind::kClear:
        tool_->on_clear(e.addr, e.size);
        break;
    }
  }
}

void ShardReplayer::end() {
  RADER_CHECK_MSG(frame_stack_.size() == 1,
                  "shard replay ended with frames still open");
  tool_->on_frame_return(frame_stack_.back(), kInvalidFrame, FrameKind::kRoot);
  frame_stack_.clear();
  tool_->on_run_end();
}

}  // namespace rader
