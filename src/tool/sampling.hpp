// O(1)-samples access sampling: a Tool wrapper dropping unsampled granules.
//
// The source paper's Figure-7 discipline keeps full-precision overhead
// acceptable for testing runs, but an always-on production mode needs
// overhead independent of footprint.  "Dynamic Race Detection with O(1)
// Samples" (PAPERS.md) supplies the theory: sample each memory GRANULE
// with probability P and run the precise detector on the sampled
// subset — any race whose two endpoints land on a sampled granule is
// still reported exactly, and expected detector work shrinks to O(P x
// footprint) while non-access events stay exact.
//
// SamplingTool wraps any inner Tool (all four detectors — they all speak
// the same callback vocabulary) and filters ONLY the data plane:
//
//   * on_access       — split into maximal runs of consecutive SAMPLED
//                       blocks (2^block_bits bytes, 4096 by default — the
//                       sampling granule); each run is forwarded as a
//                       sub-access with its TRUE byte range, so the inner
//                       detector still sees exact addresses.  Blocks keep
//                       the filter O(1) per access for typical sizes —
//                       hashing every byte-granule would make the wrapper
//                       itself O(size) — and the page-sized default keeps
//                       the sampled footprint page-LOCAL, so the packed
//                       shadow's lazy per-page epoch resets also scale
//                       with P instead of with the number of scattered
//                       sample islands.  detector.sampled_accesses counts
//                       forwarded runs, detector.sampled_dropped dropped
//                       blocks, detector.sampled_run_bytes the forwarded
//                       byte histogram.
//   * on_reducer_op   — sampled per REDUCER (salted hash of its id), so a
//                       reducer's lifecycle is kept or dropped as a unit.
//   * everything else — control plane (frames, syncs, steals, reduces,
//                       clears, run begin/end): forwarded verbatim, so the
//                       inner detector's series-parallel state is exact.
//
// Determinism: block b is sampled iff mix64(b ^ seed) < P * 2^64.
// No RNG stream, no per-run state — the same (seed, rate) pair samples
// the same blocks in every run, on every worker, at every --jobs, which
// is what makes sampled sweeps reproducible and jobs-invariant.  The
// sampled sets are NESTED as P grows (the threshold only rises), giving
// provably monotone recall — the property the statistical tests assert.
// At P >= 1 every event is forwarded VERBATIM (no splitting), so a P=1
// sampled run is byte-identical to an unsampled one by construction.
//
// Sweeps derive a per-spec seed (sampling_seed_for_spec) by hashing the
// user seed with the spec's describe() string: each steal specification
// samples independently, but identically across runs and workers.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "tool/tool.hpp"

namespace rader {

class RaceLog;

/// Sampling knobs, threaded from the CLI through driver and sweep.
struct SamplingConfig {
  bool enabled = false;   // presence of --sample-rate
  double rate = 1.0;      // P in [0,1]; >= 1 forwards everything
  std::uint64_t seed = 0x5eed;
  unsigned block_bits = 12;  // sampling granule: 2^block_bits bytes
};

/// Deterministic per-spec seed: the user seed salted with the steal
/// specification's describe() string (worker- and jobs-independent).
std::uint64_t sampling_seed_for_spec(std::uint64_t seed,
                                     std::string_view spec_describe);

/// Per-granule Bernoulli filter in front of an inner detector; see the
/// file comment.  The inner tool is borrowed unless adopt() was used.
class SamplingTool final : public Tool {
 public:
  SamplingTool(Tool* inner, const SamplingConfig& config);

  /// Take ownership of `inner` (the sweep's per-spec wiring).
  static std::unique_ptr<SamplingTool> adopt(std::unique_ptr<Tool> inner,
                                             const SamplingConfig& config);

  /// True iff sampling block `b` (byte address >> block_bits) is in the
  /// sampled set.
  bool sampled(std::uintptr_t b) const;
  /// True iff reducer `h`'s operations are forwarded.
  bool sampled_reducer(ReducerId h) const;

  void on_run_begin() override { inner_->on_run_begin(); }
  void on_run_end() override { inner_->on_run_end(); }
  void on_frame_enter(FrameId f, FrameId p, FrameKind k, ViewId v) override {
    inner_->on_frame_enter(f, p, k, v);
  }
  void on_frame_return(FrameId f, FrameId p, FrameKind k) override {
    inner_->on_frame_return(f, p, k);
  }
  void on_sync(FrameId f) override { inner_->on_sync(f); }
  void on_steal(FrameId f, std::uint32_t c, ViewId v) override {
    inner_->on_steal(f, c, v);
  }
  void on_reduce(FrameId f, ViewId l, ViewId r) override {
    inner_->on_reduce(f, l, r);
  }
  void on_access(AccessKind kind, std::uintptr_t addr, std::size_t size,
                 bool view_aware, ViewId vid, SrcTag tag) override;
  void on_reducer_op(ReducerOp op, ReducerId h, SrcTag tag) override;
  void on_clear(std::uintptr_t addr, std::size_t size) override {
    // Verbatim: clearing restricted state the inner tool never recorded
    // is a no-op, and sampled granules MUST see their clears.
    inner_->on_clear(addr, size);
  }

  /// Forks the inner detector and wraps the clone with the same filter.
  std::unique_ptr<Tool> fork(RaceLog* log) const override;

 private:
  SamplingTool(std::unique_ptr<Tool> owned, const SamplingConfig& config);

  Tool* inner_;                    // the wrapped detector (maybe owned_)
  std::unique_ptr<Tool> owned_;    // set when adopted / forked
  std::uint64_t threshold_;        // sampled iff mix64(b ^ seed) < threshold_
  std::uint64_t seed_;
  unsigned block_bits_;
  bool all_;                       // P >= 1: forward verbatim
};

}  // namespace rader
