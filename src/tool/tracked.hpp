// tracked<T>: a scalar wrapper whose reads and writes are automatically
// annotated for the detectors.
//
// The paper's Rader instruments every load and store via the compiler; here,
// programs under test either call shadow_read/shadow_write explicitly or
// declare their shared scalars as tracked<T> so ordinary-looking code
// (`x = y + 1;`) produces the access events.
#pragma once

#include <cstddef>

#include "runtime/api.hpp"

namespace rader {

template <typename T>
class tracked {
 public:
  tracked() = default;
  tracked(T v) : value_(v) {}  // NOLINT(google-explicit-constructor)

  /// Annotated load.
  operator T() const {  // NOLINT(google-explicit-constructor)
    shadow_read(&value_, sizeof(T));
    return value_;
  }

  /// Annotated store.
  tracked& operator=(T v) {
    shadow_write(&value_, sizeof(T));
    value_ = v;
    return *this;
  }

  tracked(const tracked& other) : value_(static_cast<T>(other)) {}
  tracked& operator=(const tracked& other) { return *this = static_cast<T>(other); }

  /// Annotated load with an explicit source tag for race reports.
  T load(SrcTag tag) const {
    shadow_read(&value_, sizeof(T), tag);
    return value_;
  }

  /// Annotated store with an explicit source tag for race reports.
  void store(T v, SrcTag tag) {
    shadow_write(&value_, sizeof(T), tag);
    value_ = v;
  }

  tracked& operator+=(T v) { return *this = static_cast<T>(*this) + v; }
  tracked& operator-=(T v) { return *this = static_cast<T>(*this) - v; }
  tracked& operator*=(T v) { return *this = static_cast<T>(*this) * v; }
  tracked& operator++() { return *this += T{1}; }
  tracked& operator--() { return *this -= T{1}; }

  /// Unannotated access (for initialization/verification outside the run).
  T raw() const { return value_; }
  T& raw_ref() { return value_; }

 private:
  T value_{};
};

}  // namespace rader
