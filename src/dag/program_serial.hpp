// Serialization of random programs: the `.rprog` reproducer format.
//
// A Reproducer is a self-contained artifact of one differential-fuzzing
// finding: the program's action tree, the parameters it executes with, the
// eliciting steal-specification handle, a free-form provenance note, and the
// canonical race keys the replay is expected to reproduce.  It is what the
// fuzz driver persists on a divergence (tools/fuzz_detectors --out-dir), what
// the shrinker minimizes (fuzz/shrink.hpp), and what `rader --repro=FILE`
// replays through the full report/provenance pipeline.
//
// The text format is versioned and stable:
//
//   rprog v1
//   note SP+ false positive at pool+0x8        (optional, one line)
//   seed 42
//   reducers 2
//   locations 8
//   spec steal-triple(0,1,2)
//   expect det pool+0x0 write label="pool write" prior=write aware=0
//   program {
//     update red=0 amount=3
//     spawn {
//       write loc=2
//       sync
//     }
//     read loc=1
//   }
//
// Child frames nest inline at their spawn/call action (the ProgramTree
// children-in-action-order invariant).  `describe_reproducer` always emits
// the canonical rendering above — fixed key order, two-space indentation, no
// comments — so describe(parse(describe(r))) is byte-identical to
// describe(r).  `parse_reproducer` additionally accepts blank lines and
// whole-line `#` comments, and validates every index (loc < locations,
// red < reducers, balanced braces) so a hand-edited file fails loudly
// instead of crashing the replay.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dag/random_program.hpp"

namespace rader::dag {

inline constexpr int kRprogFormatVersion = 1;

/// A self-contained fuzz reproducer (see the file comment for the format).
struct Reproducer {
  RandomProgramParams params;        // num_reducers/num_locations execute;
                                     // seed is provenance
  ProgramTree tree;
  std::string spec_handle;           // spec::from_description handle
  std::string note;                  // one-line provenance ("" = none)
  std::vector<std::string> expect;   // canonical race keys (sorted, opaque
                                     // to this layer; fuzz/differ computes
                                     // and compares them)
};

/// Canonical `.rprog` text for `r` (always parseable by parse_reproducer;
/// byte-stable across round trips).
std::string describe_reproducer(const Reproducer& r);

/// Parse `.rprog` text.  On failure returns nullopt and, when `error` is
/// non-null, stores a "line N: what" message.
std::optional<Reproducer> parse_reproducer(const std::string& text,
                                           std::string* error = nullptr);

/// Read + parse a `.rprog` file (convenience for the CLI and tests).
std::optional<Reproducer> load_reproducer(const std::string& path,
                                          std::string* error = nullptr);

/// Write `describe_reproducer(r)` to `path`.  Returns false on I/O failure.
bool save_reproducer(const Reproducer& r, const std::string& path);

}  // namespace rader::dag
