#include "dag/recorder.hpp"

namespace rader::dag {

void Recorder::on_run_begin() {
  dag_ = PerfDag{};
  stack_.clear();
}

StrandId Recorder::new_strand(const RFrame& f, ViewId vid) {
  const StrandId id = dag_.strands.size();
  dag_.strands.push_back(Strand{id, f.id, vid, f.in_reduce});
  dag_.struct_log.push_back({StructOp::kStrand, id});
  return id;
}

StrandId Recorder::ensure_cur() {
  RFrame& f = stack_.back();
  if (f.cur == kInvalidStrand) {
    // The frame was suspended while reduce operations ran: its continuation
    // follows every tail of the (merged) current segment.
    f.cur = new_strand(f, f.cur_vid);
    for (const StrandId t : f.tails[f.cur_vid]) edge(t, f.cur);
  }
  return f.cur;
}

void Recorder::on_frame_enter(FrameId frame, FrameId parent, FrameKind kind,
                              ViewId vid) {
  switch (kind) {
    case FrameKind::kRoot:
      dag_.struct_log.push_back({StructOp::kEnterRoot, kInvalidStrand});
      break;
    case FrameKind::kSpawned:
      dag_.struct_log.push_back({StructOp::kEnterSpawned, kInvalidStrand});
      break;
    case FrameKind::kCalled:
      dag_.struct_log.push_back({StructOp::kEnterCalled, kInvalidStrand});
      break;
    case FrameKind::kReduce:
      dag_.struct_log.push_back({StructOp::kEnterReduce, kInvalidStrand});
      break;
  }

  RFrame g;
  g.id = frame;
  g.kind = kind;
  g.cur_vid = vid;
  g.entry_vid = vid;
  (void)parent;

  if (stack_.empty()) {
    g.in_reduce = (kind == FrameKind::kReduce);
    stack_.push_back(std::move(g));
    stack_.back().cur = new_strand(stack_.back(), vid);
    return;
  }

  if (kind == FrameKind::kReduce) {
    // Reduce strand: in-edges from every dangling tail of the surviving
    // segment (on_reduce already folded the dead segment's tails in).
    [[maybe_unused]] RFrame& p = stack_.back();
    RADER_DCHECK(p.cur_vid == vid);
    g.in_reduce = true;
    stack_.push_back(std::move(g));
    RFrame& self = stack_.back();
    self.cur = new_strand(self, vid);
    for (const StrandId t : stack_[stack_.size() - 2].tails[vid]) {
      edge(t, self.cur);
    }
    return;
  }

  RFrame& p = stack_.back();
  const StrandId sp = ensure_cur();
  if (kind == FrameKind::kSpawned) p.last_spawn = sp;
  g.in_reduce = p.in_reduce;
  stack_.push_back(std::move(g));
  RFrame& self = stack_.back();
  self.cur = new_strand(self, vid);
  edge(sp, self.cur);
}

void Recorder::on_frame_return(FrameId, FrameId, FrameKind kind) {
  dag_.struct_log.push_back({StructOp::kReturn, kInvalidStrand});
  RFrame child = std::move(stack_.back());
  stack_.pop_back();
  const StrandId child_last =
      (child.cur != kInvalidStrand) ? child.cur : kInvalidStrand;
  RADER_DCHECK(child_last != kInvalidStrand);
  if (stack_.empty()) return;  // root finished

  RFrame& p = stack_.back();
  switch (kind) {
    case FrameKind::kCalled: {
      // Series composition: continuation follows the called child.
      const StrandId cont = new_strand(p, p.cur_vid);
      edge(child_last, cont);
      p.cur = cont;
      break;
    }
    case FrameKind::kSpawned: {
      // The child's last strand dangles until its segment's join point; the
      // continuation depends only on the spawn strand.
      p.tails[child.entry_vid].push_back(child_last);
      const StrandId cont = new_strand(p, p.cur_vid);
      RADER_DCHECK(p.last_spawn != kInvalidStrand);
      edge(p.last_spawn, cont);
      p.cur = cont;
      break;
    }
    case FrameKind::kReduce: {
      // The reduce strand becomes the sole tail of the surviving segment
      // (everything it merged now precedes it); the parent's current
      // continuation strand is unaffected — it runs in parallel with the
      // reduce.
      p.tails[child.entry_vid] = {child_last};
      break;
    }
    case FrameKind::kRoot:
      RADER_UNREACHABLE("root frame returned to a parent");
  }
}

void Recorder::on_sync(FrameId) {
  dag_.struct_log.push_back({StructOp::kSync, kInvalidStrand});
  RFrame& f = stack_.back();
  if (f.cur != kInvalidStrand) f.tails[f.cur_vid].push_back(f.cur);
  // The sync strand joins every dangling tail.
  f.cur = kInvalidStrand;
  const StrandId t = new_strand(f, f.entry_vid);
  for (auto& [vid, tails] : f.tails) {
    for (const StrandId s : tails) edge(s, t);
  }
  f.tails.clear();
  f.cur_vid = f.entry_vid;
  f.cur = t;
}

void Recorder::on_steal(FrameId, std::uint32_t, ViewId new_vid) {
  dag_.struct_log.push_back({StructOp::kSteal, kInvalidStrand});
  ++dag_.steal_count;
  RFrame& f = stack_.back();
  if (f.cur != kInvalidStrand) f.tails[f.cur_vid].push_back(f.cur);
  f.cur_vid = new_vid;
  // A stolen continuation resumes from the spawn point on a thief: its only
  // dependence is the spawn strand.
  f.cur = kInvalidStrand;
  const StrandId s = new_strand(f, new_vid);
  RADER_DCHECK(f.last_spawn != kInvalidStrand);
  edge(f.last_spawn, s);
  f.cur = s;
}

void Recorder::on_reduce(FrameId, ViewId left_vid, ViewId right_vid) {
  dag_.struct_log.push_back({StructOp::kReduceMerge, kInvalidStrand});
  ++dag_.reduce_count;
  RFrame& f = stack_.back();
  RADER_DCHECK(f.cur_vid == right_vid);
  // The strand executed so far belongs to the dying segment and must
  // precede the reduce; the frame's CONTINUATION, however, depends only on
  // it — reduce strands feed the reduce tree and the sync, never subsequent
  // user strands ("dependencies among the reduce strands form a reduce tree
  // before each sync node", §5), so the continuation runs logically in
  // PARALLEL with the reduce.
  const StrandId prev = f.cur;
  if (prev != kInvalidStrand) f.tails[f.cur_vid].push_back(prev);
  // Fold the dead segment's tails into the surviving segment's.
  auto it = f.tails.find(right_vid);
  if (it != f.tails.end()) {
    auto dead = std::move(it->second);
    f.tails.erase(it);
    auto& left = f.tails[left_vid];
    left.insert(left.end(), dead.begin(), dead.end());
  }
  f.cur_vid = left_vid;
  f.cur = new_strand(f, left_vid);
  if (prev != kInvalidStrand) edge(prev, f.cur);
}

void Recorder::on_access(AccessKind kind, std::uintptr_t addr,
                         std::size_t size, bool view_aware, ViewId vid,
                         SrcTag tag) {
  const StrandId s = ensure_cur();
  RADER_DCHECK(stack_.back().cur_vid == vid);
  dag_.accesses.push_back(Access{s, kind, addr, static_cast<std::uint32_t>(size),
                                 view_aware, vid, tag.label});
}

void Recorder::on_clear(std::uintptr_t addr, std::size_t size) {
  dag_.clears.push_back(ClearEvent{dag_.accesses.size(), addr,
                                   static_cast<std::uint32_t>(size)});
}

void Recorder::on_reducer_op(ReducerOp op, ReducerId h, SrcTag tag) {
  const StrandId s = ensure_cur();
  if (is_reducer_read(op)) {
    dag_.reducer_reads.push_back(ReducerRead{s, op, h, tag.label});
  }
}

}  // namespace rader::dag
