#include "dag/graph.hpp"

#include <algorithm>

#include "runtime/api.hpp"
#include "sched/parallel_engine.hpp"

namespace rader::dag {
namespace {

std::vector<std::vector<StrandId>> successor_lists(const PerfDag& dag) {
  std::vector<std::vector<StrandId>> succs(dag.size());
  for (const auto& [a, b] : dag.edges) {
    RADER_CHECK_MSG(a < b, "performance-dag edge violates serial order");
    succs[a].push_back(b);
  }
  return succs;
}

/// Longest-path topological levels: nodes within one level share no edges,
/// so their closure rows can be computed concurrently.
std::vector<std::vector<StrandId>> level_groups(
    const PerfDag& dag, const std::vector<std::vector<StrandId>>& succs) {
  std::vector<std::uint32_t> level(dag.size(), 0);
  std::uint32_t max_level = 0;
  for (std::size_t u = 0; u < dag.size(); ++u) {
    for (const StrandId v : succs[u]) {
      level[v] = std::max(level[v], level[u] + 1);
      max_level = std::max(max_level, level[v]);
    }
  }
  std::vector<std::vector<StrandId>> groups(max_level + 1);
  for (std::size_t u = 0; u < dag.size(); ++u) groups[level[u]].push_back(u);
  return groups;
}

}  // namespace

Reachability::Reachability(const PerfDag& dag) : n_(dag.size()) {
  desc_.assign(n_, StrandSet(n_));
  anc_.assign(n_, StrandSet(n_));
  for (std::size_t u = 0; u < n_; ++u) {
    desc_[u].set(u);
    anc_[u].set(u);
  }
  // Strand IDs are a topological order: edges go from lower to higher IDs.
  // Descendants: sweep sinks-to-sources; ancestors: sources-to-sinks.
  const auto succs = successor_lists(dag);
  for (std::size_t u = n_; u-- > 0;) {
    for (const StrandId v : succs[u]) desc_[u] |= desc_[v];
  }
  for (std::size_t u = 0; u < n_; ++u) {
    for (const StrandId v : succs[u]) anc_[v] |= anc_[u];
  }
}

Reachability::Reachability(const PerfDag& dag, ParallelEngine& engine)
    : n_(dag.size()) {
  desc_.assign(n_, StrandSet(n_));
  anc_.assign(n_, StrandSet(n_));
  const auto succs = successor_lists(dag);
  // Predecessor lists for the ancestor sweep.
  std::vector<std::vector<StrandId>> preds(n_);
  for (const auto& [a, b] : dag.edges) preds[b].push_back(a);
  const auto groups = level_groups(dag, succs);

  engine.run([&] {
    // Descendants: levels from deepest to shallowest; rows within a level
    // are independent (no edges inside a level).
    for (std::size_t lv = groups.size(); lv-- > 0;) {
      const auto& group = groups[lv];
      parallel_for<std::size_t>(0, group.size(), [&](std::size_t i) {
        const StrandId u = group[i];
        desc_[u].set(u);
        for (const StrandId v : succs[u]) desc_[u] |= desc_[v];
      });
      sync();
    }
    // Ancestors: shallow to deep.
    for (const auto& group : groups) {
      parallel_for<std::size_t>(0, group.size(), [&](std::size_t i) {
        const StrandId v = group[i];
        anc_[v].set(v);
        for (const StrandId u : preds[v]) anc_[v] |= anc_[u];
      });
      sync();
    }
  });
}

bool Reachability::same_peers(StrandId u, StrandId v) const {
  // peers(u) is the complement of anc(u) ∪ desc(u) (self is in both), so
  // peer sets are equal iff the unions are equal.
  const auto& du = desc_[u].words();
  const auto& au = anc_[u].words();
  const auto& dv = desc_[v].words();
  const auto& av = anc_[v].words();
  for (std::size_t w = 0; w < du.size(); ++w) {
    if ((du[w] | au[w]) != (dv[w] | av[w])) return false;
  }
  return true;
}

std::size_t Reachability::peer_count(StrandId u) const {
  const auto& du = desc_[u].words();
  const auto& au = anc_[u].words();
  std::size_t series = 0;
  for (std::size_t w = 0; w < du.size(); ++w) {
    series += static_cast<std::size_t>(__builtin_popcountll(du[w] | au[w]));
  }
  return n_ - series;
}

}  // namespace rader::dag
