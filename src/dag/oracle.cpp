#include "dag/oracle.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace rader::dag {
namespace {

void check_view_reads(const PerfDag& dag, const Reachability& reach,
                      OracleResult& out) {
  // Group reducer-reads by reducer, then compare peer sets pairwise.
  std::unordered_map<ReducerId, std::vector<StrandId>> reads;
  for (const auto& r : dag.reducer_reads) reads[r.reducer].push_back(r.strand);
  for (const auto& [h, strands] : reads) {
    bool racing = false;
    for (std::size_t i = 0; i < strands.size() && !racing; ++i) {
      for (std::size_t j = i + 1; j < strands.size() && !racing; ++j) {
        if (!reach.same_peers(strands[i], strands[j])) racing = true;
      }
    }
    if (racing) {
      out.any_view_read = true;
      out.racing_reducers.insert(h);
    }
  }
}

void check_determinacy(const PerfDag& dag, const Reachability& reach,
                       OracleResult& out) {
  // Bucket accesses per (byte, allocation generation), preserving serial
  // (recording) order.  A ClearEvent bumps the generation of its bytes:
  // accesses in different generations target different objects that merely
  // reused an address, and never race.
  std::unordered_map<std::uintptr_t, std::uint32_t> generation;
  std::unordered_map<std::uintptr_t,
                     std::unordered_map<std::uint32_t, std::vector<std::size_t>>>
      by_byte;
  std::size_t next_clear = 0;
  for (std::size_t i = 0; i < dag.accesses.size(); ++i) {
    while (next_clear < dag.clears.size() &&
           dag.clears[next_clear].before_access_index <= i) {
      const ClearEvent& c = dag.clears[next_clear];
      for (std::uintptr_t b = c.addr; b != c.addr + c.size; ++b) {
        ++generation[b];
      }
      ++next_clear;
    }
    const Access& a = dag.accesses[i];
    for (std::uintptr_t b = a.addr; b != a.addr + a.size; ++b) {
      by_byte[b][generation[b]].push_back(i);
    }
  }
  for (const auto& [byte, gens] : by_byte) {
    bool racing = false;
    bool racing_oblivious = false;  // some racing pair has an oblivious side
    for (const auto& [gen, idxs] : gens) {
      (void)gen;
      for (std::size_t i = 0; i < idxs.size(); ++i) {
        const Access& a1 = dag.accesses[idxs[i]];
        for (std::size_t j = i + 1; j < idxs.size(); ++j) {
          const Access& a2 = dag.accesses[idxs[j]];  // later in serial order
          if (a1.strand == a2.strand) continue;
          if (a1.kind != AccessKind::kWrite && a2.kind != AccessKind::kWrite) {
            continue;
          }
          if (!reach.parallel(a1.strand, a2.strand)) continue;
          if (a2.view_aware && a1.vid == a2.vid) continue;
          racing = true;
          if (!a1.view_aware || !a2.view_aware) racing_oblivious = true;
        }
        if (racing_oblivious) break;
      }
      if (racing_oblivious) break;
    }
    if (racing) {
      out.any_determinacy = true;
      out.racing_addrs.insert(byte);
      if (racing_oblivious) out.racing_addrs_oblivious.insert(byte);
    }
  }
}

}  // namespace

OracleResult run_oracle(const PerfDag& dag) {
  OracleResult out;
  const Reachability reach(dag);
  check_view_reads(dag, reach, out);
  check_determinacy(dag, reach, out);
  return out;
}

OracleResult run_view_read_oracle(const PerfDag& dag) {
  OracleResult out;
  const Reachability reach(dag);
  check_view_reads(dag, reach, out);
  return out;
}

}  // namespace rader::dag
