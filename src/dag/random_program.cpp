#include "dag/random_program.hpp"

#include <array>

#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"

namespace rader::dag {
namespace {

/// Counter monoid whose Update and Reduce code annotate the view memory —
/// so view-aware strands produce access events, as compiled instrumentation
/// would.
struct Cnt {
  long v = 0;
  long* touch = nullptr;  // armed by kUpdateShared: Reduce re-writes it
};

struct cnt_monoid {
  using value_type = Cnt;
  static Cnt identity() { return {}; }
  static void reduce(Cnt& left, Cnt& right) {
    shadow_read(&right.v, sizeof(right.v), SrcTag{"cnt reduce (read rhs)"});
    shadow_write(&left.v, sizeof(left.v), SrcTag{"cnt reduce (write lhs)"});
    left.v += right.v;
    if (right.touch != nullptr) {
      // A view-aware write to SHARED memory that executes only when this
      // particular reduce strand exists — the races it can cause are
      // elicitable only by steal specifications that produce it (§7).
      shadow_write(right.touch, sizeof(long), SrcTag{"cnt reduce touch"});
      *right.touch += right.v;
    }
    if (left.touch == nullptr) left.touch = right.touch;
  }
};

using CntReducer = reducer<cnt_monoid>;

}  // namespace

std::size_t ProgramTree::action_count() const {
  std::size_t count = actions.size();
  for (const ProgramTree& c : children) count += c.action_count();
  return count;
}

struct RandomProgram::Impl {
  RandomProgramParams params;
  ProgramTree root;
  std::vector<long> pool;          // shared scalar locations
  std::vector<std::unique_ptr<CntReducer>> reducers;  // live during a run
  std::vector<long> totals;        // reducer values captured at run end

  void generate(ProgramTree& frame, Rng& rng, std::uint32_t depth);
  void execute(const ProgramTree& frame);
};

void RandomProgram::Impl::generate(ProgramTree& frame, Rng& rng,
                                   std::uint32_t depth) {
  const std::uint32_t n_actions =
      1 + static_cast<std::uint32_t>(rng.below(params.max_actions));
  for (std::uint32_t i = 0; i < n_actions; ++i) {
    double x = rng.uniform();
    Action a{};
    const auto pick_loc = [&] {
      return static_cast<std::uint32_t>(rng.below(params.num_locations));
    };
    const auto pick_red = [&] {
      return static_cast<std::uint32_t>(rng.below(params.num_reducers));
    };
    bool want_spawn = false;
    bool want_call = false;
    if ((x -= params.p_spawn) < 0) {
      want_spawn = true;
    } else if ((x -= params.p_call) < 0) {
      want_call = true;
    }
    if (want_spawn || want_call) {
      if (depth >= params.max_depth) {
        // At the depth bound, nesting picks degrade to plain accesses so
        // the configured action mix is otherwise preserved.
        a.type = rng.chance(0.5) ? ActionType::kRead : ActionType::kWrite;
        a.loc = pick_loc();
        frame.actions.push_back(a);
        continue;
      }
      a.type = want_spawn ? ActionType::kSpawn : ActionType::kCall;
      a.child = static_cast<std::uint32_t>(frame.children.size());
      frame.children.emplace_back();
      frame.actions.push_back(a);
      generate(frame.children.back(), rng, depth + 1);
      continue;
    } else if ((x -= params.p_sync) < 0) {
      a.type = ActionType::kSync;
    } else if ((x -= params.p_access) < 0) {
      a.type = rng.chance(0.5) ? ActionType::kRead : ActionType::kWrite;
      a.loc = pick_loc();
    } else if ((x -= params.p_update) < 0) {
      a.type = ActionType::kUpdate;
      a.red = pick_red();
      a.amount = rng.range(1, 9);
    } else if ((x -= params.p_reducer_read) < 0) {
      a.type = rng.chance(0.7) ? ActionType::kGetValue : ActionType::kSetValue;
      a.red = pick_red();
      a.amount = rng.range(0, 99);
    } else if ((x -= params.p_raw_view) < 0) {
      a.type = rng.chance(0.5) ? ActionType::kRawRead : ActionType::kRawWrite;
      a.red = pick_red();
    } else if ((x -= params.p_update_shared) < 0) {
      a.type = ActionType::kUpdateShared;
      a.red = pick_red();
      a.loc = pick_loc();
      a.amount = rng.range(1, 9);
    } else {
      // Leftover probability mass defaults to a benign update, so zeroed
      // action classes stay genuinely absent.
      a.type = ActionType::kUpdate;
      a.red = pick_red();
      a.amount = rng.range(1, 9);
    }
    frame.actions.push_back(a);
  }
}

void RandomProgram::Impl::execute(const ProgramTree& frame) {
  for (const Action& a : frame.actions) {
    switch (a.type) {
      case ActionType::kSpawn:
        spawn([this, &frame, &a] { execute(frame.children[a.child]); });
        break;
      case ActionType::kCall:
        call([this, &frame, &a] { execute(frame.children[a.child]); });
        break;
      case ActionType::kSync:
        sync();
        break;
      case ActionType::kRead: {
        shadow_read(&pool[a.loc], sizeof(long), SrcTag{"pool read"});
        volatile long sink = pool[a.loc];
        (void)sink;
        break;
      }
      case ActionType::kWrite:
        shadow_write(&pool[a.loc], sizeof(long), SrcTag{"pool write"});
        pool[a.loc] += 1;
        break;
      case ActionType::kUpdate:
        reducers[a.red]->update(
            [&](Cnt& c) {
              shadow_write(&c.v, sizeof(c.v), SrcTag{"cnt update"});
              c.v += a.amount;
            },
            SrcTag{"cnt update"});
        break;
      case ActionType::kUpdateShared:
        reducers[a.red]->update(
            [&](Cnt& c) {
              shadow_write(&c.v, sizeof(c.v), SrcTag{"cnt update (shared)"});
              c.v += a.amount;
              shadow_write(&pool[a.loc], sizeof(long),
                           SrcTag{"update writes pool"});
              pool[a.loc] += 1;
              c.touch = &pool[a.loc];
            },
            SrcTag{"cnt update (shared)"});
        break;
      case ActionType::kGetValue: {
        volatile long sink = reducers[a.red]->get_value(SrcTag{"get_value"}).v;
        (void)sink;
        break;
      }
      case ActionType::kSetValue:
        reducers[a.red]->set_value(Cnt{a.amount}, SrcTag{"set_value"});
        break;
      case ActionType::kRawRead: {
        // The Figure-1 bug class: user code reads through a stale pointer
        // into the reducer's underlying (leftmost-view) data, which Reduce
        // operations mutate.
        Cnt* raw = static_cast<Cnt*>(reducers[a.red]->hyper_leftmost());
        shadow_read(&raw->v, sizeof(raw->v), SrcTag{"raw view read"});
        volatile long sink = raw->v;
        (void)sink;
        break;
      }
      case ActionType::kRawWrite: {
        Cnt* raw = static_cast<Cnt*>(reducers[a.red]->hyper_leftmost());
        shadow_write(&raw->v, sizeof(raw->v), SrcTag{"raw view write"});
        raw->v += 1;
        break;
      }
    }
  }
}

RandomProgram::RandomProgram(const RandomProgramParams& params)
    : impl_(std::make_unique<Impl>()) {
  impl_->params = params;
  Rng rng(params.seed);
  impl_->generate(impl_->root, rng, 0);
  impl_->pool.assign(params.num_locations, 0);
}

RandomProgram::RandomProgram(ProgramTree tree,
                             const RandomProgramParams& params)
    : impl_(std::make_unique<Impl>()) {
  impl_->params = params;
  impl_->root = std::move(tree);
  impl_->pool.assign(params.num_locations, 0);
}

RandomProgram::~RandomProgram() = default;

void RandomProgram::operator()() {
  Impl& im = *impl_;
  im.pool.assign(im.params.num_locations, 0);
  im.reducers.clear();
  for (std::uint32_t i = 0; i < im.params.num_reducers; ++i) {
    im.reducers.push_back(std::make_unique<CntReducer>(SrcTag{"cnt reducer"}));
  }
  im.execute(im.root);
  sync();  // join everything before reading final values
  im.totals.clear();
  for (auto& r : im.reducers) {
    im.totals.push_back(r->get_value(SrcTag{"final get_value"}).v);
  }
  im.reducers.clear();  // destroy (kDestroy reducer-reads) inside the run
}

long RandomProgram::reducer_total() const {
  long total = 0;
  for (const long v : impl_->totals) total += v;
  return total;
}

std::pair<std::uintptr_t, std::uintptr_t> RandomProgram::pool_range() const {
  const auto base = reinterpret_cast<std::uintptr_t>(impl_->pool.data());
  return {base, base + impl_->pool.size() * sizeof(long)};
}

std::size_t RandomProgram::action_count() const {
  return impl_->root.action_count();
}

const ProgramTree& RandomProgram::tree() const { return impl_->root; }

const RandomProgramParams& RandomProgram::params() const {
  return impl_->params;
}

}  // namespace rader::dag
