// Canonical SP parse trees (Section 4, Figure 4 of the paper).
//
// The DAG of a Cilk computation without steals is series-parallel and can be
// built by recursive series (S) and parallel (P) compositions; the recursion
// is the binary *SP parse tree*, whose leaves are strands.  The *canonical*
// parse tree lays a function's sync blocks out as a right-leaning chain: the
// left child of each chain node is a strand of F or the parse subtree of a
// child invocation (a P node if the child was spawned, an S node otherwise),
// and a spine of S nodes links the sync blocks.
//
// The tree is built from the Recorder's structural event log (no-steal runs
// only).  It provides the relations the correctness proofs rest on:
//
//   Lemma 2: peers(u) = peers(v)  ⟺  the u–v tree path is all S nodes.
//   [Feng–Leiserson Lemma 4]: u ‖ v  ⟺  LCA(u, v) is a P node.
//
// Both are property-tested against the bitset Reachability ground truth.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dag/graph.hpp"

namespace rader::dag {

class ParseTree {
 public:
  enum class NodeKind : std::uint8_t { kLeaf, kS, kP };

  struct Node {
    NodeKind kind = NodeKind::kLeaf;
    StrandId strand = kInvalidStrand;  // for leaves
    std::int32_t left = -1;            // child indices into nodes()
    std::int32_t right = -1;
    std::int32_t parent = -1;
    std::int32_t depth = 0;
  };

  /// Build the canonical parse tree from a no-steal execution's structural
  /// log.  Aborts if the log contains steal or reduce events (such
  /// computations are not series-parallel — that is the point of SP+).
  static ParseTree build(const PerfDag& dag);

  const std::vector<Node>& nodes() const { return nodes_; }
  std::int32_t root() const { return root_; }

  /// Tree node index of a strand's leaf (-1 if the strand is not a leaf —
  /// cannot happen for strands of a no-steal run).
  std::int32_t leaf_of(StrandId s) const { return leaf_of_[s]; }

  /// Least common ancestor of two strands' leaves.
  std::int32_t lca(StrandId u, StrandId v) const;

  /// u ‖ v per the parse tree: LCA is a P node.
  bool parallel(StrandId u, StrandId v) const {
    return nodes_[lca(u, v)].kind == NodeKind::kP;
  }

  /// Lemma 2's criterion: the path from u to v consists entirely of S nodes.
  bool all_s_path(StrandId u, StrandId v) const;

  /// Count of P nodes on the root-to-leaf path of strand u (the "depth"
  /// classes of Theorem 6).
  std::uint32_t p_depth(StrandId u) const;

 private:
  std::int32_t make_leaf(StrandId s);
  std::int32_t make_inner(NodeKind kind, std::int32_t l, std::int32_t r);
  void finalize(std::int32_t node, std::int32_t parent, std::int32_t depth);

  std::vector<Node> nodes_;
  std::vector<std::int32_t> leaf_of_;
  std::int32_t root_ = -1;
};

}  // namespace rader::dag
