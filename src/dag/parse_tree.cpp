#include "dag/parse_tree.hpp"

#include <utility>

namespace rader::dag {
namespace {

struct Item {
  bool spawned = false;
  std::int32_t node = -1;
};

}  // namespace

std::int32_t ParseTree::make_leaf(StrandId s) {
  const auto idx = static_cast<std::int32_t>(nodes_.size());
  Node n;
  n.kind = NodeKind::kLeaf;
  n.strand = s;
  nodes_.push_back(n);
  if (leaf_of_.size() <= s) leaf_of_.resize(s + 1, -1);
  leaf_of_[s] = idx;
  return idx;
}

std::int32_t ParseTree::make_inner(NodeKind kind, std::int32_t l,
                                   std::int32_t r) {
  const auto idx = static_cast<std::int32_t>(nodes_.size());
  Node n;
  n.kind = kind;
  n.left = l;
  n.right = r;
  nodes_.push_back(n);
  return idx;
}

ParseTree ParseTree::build(const PerfDag& dag) {
  ParseTree tree;
  const auto& log = dag.struct_log;

  // Right-leaning chain for one sync block: node_i = kind_i(item_i, rest),
  // where kind_i is P for a spawned child and S otherwise.
  const auto build_block = [&tree](const std::vector<Item>& items) {
    RADER_CHECK(!items.empty());
    std::int32_t rest = items.back().node;
    for (std::size_t i = items.size() - 1; i-- > 0;) {
      rest = tree.make_inner(items[i].spawned ? NodeKind::kP : NodeKind::kS,
                             items[i].node, rest);
    }
    return rest;
  };
  // Spine of S nodes linking the sync blocks.
  const auto build_spine = [&tree](const std::vector<std::int32_t>& blocks) {
    RADER_CHECK(!blocks.empty());
    std::int32_t rest = blocks.back();
    for (std::size_t i = blocks.size() - 1; i-- > 0;) {
      rest = tree.make_inner(NodeKind::kS, blocks[i], rest);
    }
    return rest;
  };

  // Recursive descent over the structural log.  parse_frame is entered with
  // `i` at the frame's first kStrand event and returns its subtree root,
  // leaving `i` just past the frame's kReturn (or at end-of-log for root).
  std::size_t i = 0;
  auto parse_frame = [&](auto&& self) -> std::int32_t {
    std::vector<std::int32_t> blocks;
    std::vector<Item> items;
    while (i < log.size()) {
      const StructEvent ev = log[i];
      switch (ev.op) {
        case StructOp::kStrand:
          items.push_back({false, tree.make_leaf(ev.strand)});
          ++i;
          break;
        case StructOp::kEnterSpawned:
        case StructOp::kEnterCalled: {
          const bool spawned = ev.op == StructOp::kEnterSpawned;
          ++i;  // consume the enter
          const std::int32_t child = self(self);
          items.push_back({spawned, child});
          break;
        }
        case StructOp::kSync:
          blocks.push_back(build_block(items));
          items.clear();
          ++i;  // the sync strand follows as a kStrand in the next block
          break;
        case StructOp::kReturn:
          ++i;
          blocks.push_back(build_block(items));
          return build_spine(blocks);
        case StructOp::kEnterRoot:
          RADER_UNREACHABLE("nested root frame in structural log");
        case StructOp::kEnterReduce:
        case StructOp::kSteal:
        case StructOp::kReduceMerge:
          RADER_UNREACHABLE(
              "parse trees exist only for no-steal executions "
              "(series-parallel dags)");
      }
    }
    // Root frame: log may end without an explicit kReturn.
    blocks.push_back(build_block(items));
    return build_spine(blocks);
  };

  RADER_CHECK(!log.empty() && log[0].op == StructOp::kEnterRoot);
  i = 1;
  tree.root_ = parse_frame(parse_frame);

  // Fill parent/depth links iteratively.
  tree.finalize(tree.root_, -1, 0);
  return tree;
}

void ParseTree::finalize(std::int32_t node, std::int32_t parent,
                         std::int32_t depth) {
  std::vector<std::pair<std::int32_t, std::pair<std::int32_t, std::int32_t>>>
      work{{node, {parent, depth}}};
  while (!work.empty()) {
    auto [n, pd] = work.back();
    work.pop_back();
    nodes_[n].parent = pd.first;
    nodes_[n].depth = pd.second;
    if (nodes_[n].left >= 0) work.push_back({nodes_[n].left, {n, pd.second + 1}});
    if (nodes_[n].right >= 0)
      work.push_back({nodes_[n].right, {n, pd.second + 1}});
  }
}

std::int32_t ParseTree::lca(StrandId u, StrandId v) const {
  std::int32_t a = leaf_of_[u];
  std::int32_t b = leaf_of_[v];
  RADER_CHECK(a >= 0 && b >= 0);
  while (nodes_[a].depth > nodes_[b].depth) a = nodes_[a].parent;
  while (nodes_[b].depth > nodes_[a].depth) b = nodes_[b].parent;
  while (a != b) {
    a = nodes_[a].parent;
    b = nodes_[b].parent;
  }
  return a;
}

bool ParseTree::all_s_path(StrandId u, StrandId v) const {
  if (u == v) return true;
  const std::int32_t anc = lca(u, v);
  if (nodes_[anc].kind != NodeKind::kS) return false;
  for (std::int32_t n = nodes_[leaf_of_[u]].parent; n != anc;
       n = nodes_[n].parent) {
    if (nodes_[n].kind != NodeKind::kS) return false;
  }
  for (std::int32_t n = nodes_[leaf_of_[v]].parent; n != anc;
       n = nodes_[n].parent) {
    if (nodes_[n].kind != NodeKind::kS) return false;
  }
  return true;
}

std::uint32_t ParseTree::p_depth(StrandId u) const {
  std::uint32_t count = 0;
  for (std::int32_t n = nodes_[leaf_of_[u]].parent; n >= 0;
       n = nodes_[n].parent) {
    if (nodes_[n].kind == NodeKind::kP) ++count;
  }
  return count;
}

}  // namespace rader::dag
