// Performance-DAG representation and reachability.
//
// A Cilk computation is modeled as a DAG whose vertices are strands and
// whose edges are parallel control dependencies (Section 3).  A computation
// that uses reducers is modeled as a *performance DAG* (Section 5): the
// ordinary DAG augmented with reduce strands, reduce-tree dependencies, and
// modified sync in-edges.
//
// The Recorder (dag/recorder.hpp) builds a PerfDag from the instrumentation
// event stream; Reachability computes the full transitive closure with
// bitsets, giving the brute-force series/parallel and peer-set relations the
// detectors are validated against.  Strands are created in serial execution
// order, so strand IDs are already a topological order.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/types.hpp"
#include "support/common.hpp"

namespace rader {
class ParallelEngine;
}  // namespace rader

namespace rader::dag {

struct Strand {
  StrandId id = kInvalidStrand;
  FrameId frame = kInvalidFrame;
  ViewId vid = kInvalidView;
  bool in_reduce = false;  // strand of a Reduce invocation (view-aware)
};

struct Access {
  StrandId strand = kInvalidStrand;
  AccessKind kind = AccessKind::kRead;
  std::uintptr_t addr = 0;
  std::uint32_t size = 0;
  bool view_aware = false;
  ViewId vid = kInvalidView;
  const char* label = "";
};

struct ReducerRead {
  StrandId strand = kInvalidStrand;
  ReducerOp op = ReducerOp::kGetValue;
  ReducerId reducer = kInvalidReducer;
  const char* label = "";
};

/// Structural event log, sufficient to rebuild the canonical SP parse tree
/// of a no-steal execution (dag/parse_tree.hpp).
enum class StructOp : std::uint8_t {
  kEnterSpawned,
  kEnterCalled,
  kEnterReduce,
  kEnterRoot,
  kReturn,
  kSync,
  kSteal,
  kReduceMerge,
  kStrand,  // a new strand became current (operand = strand id)
};

struct StructEvent {
  StructOp op;
  StrandId strand = kInvalidStrand;
};

/// A shadow-clear (free) event, positioned in the serial access order: it
/// took effect after `before_access_index` accesses had been recorded.
/// Accesses to the same byte in different "generations" (separated by a
/// clear) target logically different objects and never race.
struct ClearEvent {
  std::size_t before_access_index = 0;
  std::uintptr_t addr = 0;
  std::uint32_t size = 0;
};

struct PerfDag {
  std::vector<Strand> strands;
  std::vector<std::pair<StrandId, StrandId>> edges;
  std::vector<Access> accesses;
  std::vector<ReducerRead> reducer_reads;
  std::vector<ClearEvent> clears;
  std::vector<StructEvent> struct_log;
  std::uint64_t steal_count = 0;
  std::uint64_t reduce_count = 0;

  std::size_t size() const { return strands.size(); }
};

/// Fixed-width bitset over strand IDs.
class StrandSet {
 public:
  StrandSet() = default;
  explicit StrandSet(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  StrandSet& operator|=(const StrandSet& o) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
    return *this;
  }
  bool operator==(const StrandSet& o) const { return words_ == o.words_; }

  std::size_t size() const { return n_; }
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Full transitive closure of a PerfDag: O(V·E/64) time, O(V²/8) space.
class Reachability {
 public:
  explicit Reachability(const PerfDag& dag);

  /// Parallel construction on the work-stealing engine (identical result):
  /// bitset rows of each topological level are computed with parallel_for.
  Reachability(const PerfDag& dag, ParallelEngine& engine);

  /// u strictly precedes v (u ≺ v): a path exists from u to v.
  bool precedes(StrandId u, StrandId v) const {
    return u != v && desc_[u].test(v);
  }

  /// u ‖ v: neither precedes the other.
  bool parallel(StrandId u, StrandId v) const {
    return u != v && !desc_[u].test(v) && !desc_[v].test(u);
  }

  /// peers(u) == peers(v): equal sets of logically parallel strands.
  /// Equivalent to equal (ancestors ∪ descendants ∪ self) sets.
  bool same_peers(StrandId u, StrandId v) const;

  /// Number of strands logically parallel with u.
  std::size_t peer_count(StrandId u) const;

 private:
  std::size_t n_;
  std::vector<StrandSet> desc_;  // desc_[u]: strands reachable from u (incl. u)
  std::vector<StrandSet> anc_;   // anc_[u]: strands reaching u (incl. u)
};

}  // namespace rader::dag
