// Brute-force race oracles: the ground truth the detectors are validated
// against.
//
// Working directly from the recorded performance DAG and the paper's
// definitions (no bags, no shadow spaces — full transitive closure instead):
//
//  * View-read race (Section 3): two reducer-reads of the same reducer at
//    strands u, v with peers(u) != peers(v).
//
//  * Determinacy race (Section 5): accesses a1 (strand u, earlier in serial
//    order) and a2 (strand v) overlap, at least one writes, and
//      - a2 view-oblivious:  u ‖ v;
//      - a2 view-aware:      u ‖ v  AND  the strands' views differ (strands
//        on the same view are executed serially by one worker between
//        steals and cannot race under any schedule consistent with the
//        specification).
//    Reduce-strand orderings are captured structurally: reduce-tree edges
//    already serialize a reduce strand after the segments it merges.
//
// Complexity is O(V²) space and O(V·E + A²) time — fine for the randomized
// property tests, hopeless for real workloads, which is exactly why the
// paper's algorithms exist.
#pragma once

#include <unordered_set>

#include "dag/graph.hpp"

namespace rader::dag {

struct OracleResult {
  bool any_view_read = false;
  bool any_determinacy = false;
  std::unordered_set<std::uintptr_t> racing_addrs;  // byte-granular
  // Subset of racing_addrs where some racing pair has at least one
  // view-OBLIVIOUS access — the class Section 7's coverage guarantee is
  // stated for.
  std::unordered_set<std::uintptr_t> racing_addrs_oblivious;
  std::unordered_set<ReducerId> racing_reducers;
};

/// Evaluate both race definitions on a recorded execution.
OracleResult run_oracle(const PerfDag& dag);

/// View-read oracle only (meaningful on no-steal recordings).
OracleResult run_view_read_oracle(const PerfDag& dag);

}  // namespace rader::dag
