#include "dag/program_serial.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rader::dag {
namespace {

/// One line per action keyword; keep in sync with ActionType.
const char* keyword(ActionType t) {
  switch (t) {
    case ActionType::kSpawn: return "spawn";
    case ActionType::kCall: return "call";
    case ActionType::kSync: return "sync";
    case ActionType::kRead: return "read";
    case ActionType::kWrite: return "write";
    case ActionType::kUpdate: return "update";
    case ActionType::kUpdateShared: return "update-shared";
    case ActionType::kGetValue: return "get-value";
    case ActionType::kSetValue: return "set-value";
    case ActionType::kRawRead: return "raw-read";
    case ActionType::kRawWrite: return "raw-write";
  }
  return "?";
}

void describe_frame(std::ostringstream& os, const ProgramTree& frame,
                    int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  for (const Action& a : frame.actions) {
    os << pad;
    switch (a.type) {
      case ActionType::kSpawn:
      case ActionType::kCall:
        os << keyword(a.type) << " {\n";
        describe_frame(os, frame.children[a.child], depth + 1);
        os << pad << "}\n";
        break;
      case ActionType::kSync:
        os << "sync\n";
        break;
      case ActionType::kRead:
      case ActionType::kWrite:
        os << keyword(a.type) << " loc=" << a.loc << "\n";
        break;
      case ActionType::kUpdate:
        os << "update red=" << a.red << " amount=" << a.amount << "\n";
        break;
      case ActionType::kUpdateShared:
        os << "update-shared red=" << a.red << " loc=" << a.loc
           << " amount=" << a.amount << "\n";
        break;
      case ActionType::kGetValue:
        os << "get-value red=" << a.red << "\n";
        break;
      case ActionType::kSetValue:
        os << "set-value red=" << a.red << " amount=" << a.amount << "\n";
        break;
      case ActionType::kRawRead:
      case ActionType::kRawWrite:
        os << keyword(a.type) << " red=" << a.red << "\n";
        break;
    }
  }
}

/// Single-line rendering: newlines would corrupt the line-based format.
std::string one_line(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

struct Parser {
  std::istringstream in;
  std::string* error;
  int line_no = 0;

  explicit Parser(const std::string& text, std::string* err)
      : in(text), error(err) {}

  bool fail(const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + what;
    }
    return false;
  }

  /// Next meaningful line, stripped of indentation; false at EOF.
  bool next_line(std::string& out) {
    std::string raw;
    while (std::getline(in, raw)) {
      ++line_no;
      std::size_t b = raw.find_first_not_of(" \t");
      if (b == std::string::npos) continue;            // blank
      std::size_t e = raw.find_last_not_of(" \t\r");
      out = raw.substr(b, e - b + 1);
      if (out[0] == '#') continue;                     // comment
      return true;
    }
    return false;
  }
};

/// "key=value" fields after an action keyword.  Returns false on malformed
/// fields or unknown keys.
bool parse_fields(const std::string& rest, std::uint32_t* loc,
                  std::uint32_t* red, long* amount) {
  std::istringstream fs(rest);
  std::string tok;
  while (fs >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (val.empty()) return false;
    char* end = nullptr;
    if (key == "loc" && loc != nullptr) {
      const unsigned long v = std::strtoul(val.c_str(), &end, 10);
      if (*end != '\0') return false;
      *loc = static_cast<std::uint32_t>(v);
      loc = nullptr;  // each key at most once
    } else if (key == "red" && red != nullptr) {
      const unsigned long v = std::strtoul(val.c_str(), &end, 10);
      if (*end != '\0') return false;
      *red = static_cast<std::uint32_t>(v);
      red = nullptr;
    } else if (key == "amount" && amount != nullptr) {
      const long v = std::strtol(val.c_str(), &end, 10);
      if (*end != '\0') return false;
      *amount = v;
      amount = nullptr;
    } else {
      return false;
    }
  }
  return true;
}

/// Validate every action index of `frame` against the params and the
/// children-in-action-order invariant.
bool validate_frame(const ProgramTree& frame, const RandomProgramParams& p,
                    std::string* what) {
  std::uint32_t next_child = 0;
  for (const Action& a : frame.actions) {
    switch (a.type) {
      case ActionType::kSpawn:
      case ActionType::kCall:
        if (a.child != next_child || a.child >= frame.children.size()) {
          *what = "child frames must be referenced in order";
          return false;
        }
        ++next_child;
        break;
      case ActionType::kRead:
      case ActionType::kWrite:
        if (a.loc >= p.num_locations) {
          *what = "loc=" + std::to_string(a.loc) + " out of range (locations " +
                  std::to_string(p.num_locations) + ")";
          return false;
        }
        break;
      case ActionType::kUpdateShared:
        if (a.loc >= p.num_locations) {
          *what = "loc=" + std::to_string(a.loc) + " out of range (locations " +
                  std::to_string(p.num_locations) + ")";
          return false;
        }
        [[fallthrough]];
      case ActionType::kUpdate:
      case ActionType::kGetValue:
      case ActionType::kSetValue:
      case ActionType::kRawRead:
      case ActionType::kRawWrite:
        if (a.red >= p.num_reducers) {
          *what = "red=" + std::to_string(a.red) + " out of range (reducers " +
                  std::to_string(p.num_reducers) + ")";
          return false;
        }
        break;
      case ActionType::kSync:
        break;
    }
  }
  if (next_child != frame.children.size()) {
    *what = "frame has unreferenced child frames";
    return false;
  }
  for (const ProgramTree& c : frame.children) {
    if (!validate_frame(c, p, what)) return false;
  }
  return true;
}

}  // namespace

std::string describe_reproducer(const Reproducer& r) {
  std::ostringstream os;
  os << "rprog v" << kRprogFormatVersion << "\n";
  if (!r.note.empty()) os << "note " << one_line(r.note) << "\n";
  os << "seed " << r.params.seed << "\n";
  os << "reducers " << r.params.num_reducers << "\n";
  os << "locations " << r.params.num_locations << "\n";
  os << "spec " << one_line(r.spec_handle) << "\n";
  for (const std::string& e : r.expect) os << "expect " << one_line(e) << "\n";
  os << "program {\n";
  describe_frame(os, r.tree, 1);
  os << "}\n";
  return os.str();
}

std::optional<Reproducer> parse_reproducer(const std::string& text,
                                           std::string* error) {
  Parser p(text, error);
  std::string line;

  if (!p.next_line(line)) {
    p.fail("empty input (expected 'rprog v1' header)");
    return std::nullopt;
  }
  if (line != "rprog v" + std::to_string(kRprogFormatVersion)) {
    p.fail("unsupported header '" + line + "' (expected 'rprog v" +
           std::to_string(kRprogFormatVersion) + "')");
    return std::nullopt;
  }

  Reproducer r;
  r.params.seed = 0;
  bool have_reducers = false, have_locations = false, have_spec = false;
  bool in_program = false;

  while (p.next_line(line)) {
    const std::size_t sp = line.find(' ');
    const std::string key = line.substr(0, sp);
    const std::string rest =
        sp == std::string::npos ? "" : line.substr(line.find_first_not_of(' ', sp));
    if (key == "note") {
      r.note = rest;
    } else if (key == "seed") {
      char* end = nullptr;
      r.params.seed = std::strtoull(rest.c_str(), &end, 10);
      if (rest.empty() || *end != '\0') {
        p.fail("malformed seed '" + rest + "'");
        return std::nullopt;
      }
    } else if (key == "reducers" || key == "locations") {
      char* end = nullptr;
      const unsigned long v = std::strtoul(rest.c_str(), &end, 10);
      if (rest.empty() || *end != '\0') {
        p.fail("malformed " + key + " '" + rest + "'");
        return std::nullopt;
      }
      if (key == "reducers") {
        r.params.num_reducers = static_cast<std::uint32_t>(v);
        have_reducers = true;
      } else {
        r.params.num_locations = static_cast<std::uint32_t>(v);
        have_locations = true;
      }
    } else if (key == "spec") {
      if (rest.empty()) {
        p.fail("empty spec handle");
        return std::nullopt;
      }
      r.spec_handle = rest;
      have_spec = true;
    } else if (key == "expect") {
      if (rest.empty()) {
        p.fail("empty expect line");
        return std::nullopt;
      }
      r.expect.push_back(rest);
    } else if (line == "program {") {
      in_program = true;
      break;
    } else {
      p.fail("unknown directive '" + key + "'");
      return std::nullopt;
    }
  }

  if (!have_reducers || !have_locations || !have_spec || !in_program) {
    p.fail("incomplete header: need reducers, locations, spec, 'program {'");
    return std::nullopt;
  }

  // The program block: a stack of open frames, root at the bottom.
  std::vector<ProgramTree*> stack{&r.tree};
  bool closed = false;
  while (p.next_line(line)) {
    if (closed) {
      p.fail("content after the closing '}' of the program block");
      return std::nullopt;
    }
    if (line == "}") {
      stack.pop_back();
      if (stack.empty()) closed = true;
      continue;
    }
    const std::size_t sp = line.find(' ');
    const std::string word = line.substr(0, sp);
    const std::string rest =
        sp == std::string::npos
            ? ""
            : line.substr(line.find_first_not_of(' ', sp));
    ProgramTree& frame = *stack.back();
    Action a{};
    bool open_child = false;
    if (word == "spawn" || word == "call") {
      if (rest != "{") {
        p.fail("'" + word + "' must be followed by '{'");
        return std::nullopt;
      }
      a.type = word == "spawn" ? ActionType::kSpawn : ActionType::kCall;
      a.child = static_cast<std::uint32_t>(frame.children.size());
      open_child = true;
    } else if (word == "sync") {
      a.type = ActionType::kSync;
    } else if (word == "read" || word == "write") {
      a.type = word == "read" ? ActionType::kRead : ActionType::kWrite;
      if (!parse_fields(rest, &a.loc, nullptr, nullptr)) {
        p.fail("malformed fields in '" + line + "'");
        return std::nullopt;
      }
    } else if (word == "update") {
      a.type = ActionType::kUpdate;
      if (!parse_fields(rest, nullptr, &a.red, &a.amount)) {
        p.fail("malformed fields in '" + line + "'");
        return std::nullopt;
      }
    } else if (word == "update-shared") {
      a.type = ActionType::kUpdateShared;
      if (!parse_fields(rest, &a.loc, &a.red, &a.amount)) {
        p.fail("malformed fields in '" + line + "'");
        return std::nullopt;
      }
    } else if (word == "get-value") {
      a.type = ActionType::kGetValue;
      if (!parse_fields(rest, nullptr, &a.red, nullptr)) {
        p.fail("malformed fields in '" + line + "'");
        return std::nullopt;
      }
    } else if (word == "set-value") {
      a.type = ActionType::kSetValue;
      if (!parse_fields(rest, nullptr, &a.red, &a.amount)) {
        p.fail("malformed fields in '" + line + "'");
        return std::nullopt;
      }
    } else if (word == "raw-read" || word == "raw-write") {
      a.type =
          word == "raw-read" ? ActionType::kRawRead : ActionType::kRawWrite;
      if (!parse_fields(rest, nullptr, &a.red, nullptr)) {
        p.fail("malformed fields in '" + line + "'");
        return std::nullopt;
      }
    } else {
      p.fail("unknown action '" + word + "'");
      return std::nullopt;
    }
    frame.actions.push_back(a);
    if (open_child) {
      frame.children.emplace_back();
      stack.push_back(&frame.children.back());
    }
  }
  if (!closed) {
    p.fail("unclosed frame: " + std::to_string(stack.size()) +
           " '}' missing");
    return std::nullopt;
  }

  std::string what;
  if (!validate_frame(r.tree, r.params, &what)) {
    p.fail("invalid program: " + what);
    return std::nullopt;
  }
  return r;
}

std::optional<Reproducer> load_reproducer(const std::string& path,
                                          std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto r = parse_reproducer(buf.str(), error);
  if (!r && error != nullptr) *error = path + ": " + *error;
  return r;
}

bool save_reproducer(const Reproducer& r, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << describe_reproducer(r);
  return out.good();
}

}  // namespace rader::dag
