// Parallel offline race analysis — a prototype answer to the paper's
// concluding question (§10): "a natural question is whether [the
// algorithms] can be parallelized ... an efficient parallel algorithm can
// lead to a light-weight always-on view-read race detection tool."
//
// The paper lays out why ON-THE-FLY parallel detection is hard (no "last
// reader" under parallel execution; steal-specification constraints fight
// the load balancer).  This module takes the offline route instead: record
// the execution once (dag::Recorder), then evaluate the race definitions
// over the performance DAG IN PARALLEL on the work-stealing engine — the
// library analyzing itself with its own reducers:
//
//   * the transitive-closure sweeps parallelize across strands within a
//     topological level (bitset rows OR in parallel);
//   * the peer-set and per-location pairwise checks parallelize with
//     parallel_for, collecting racing reducers/locations into
//     vector-append reducers.
//
// Results are bit-identical to the serial oracle (property-tested).
#pragma once

#include "dag/oracle.hpp"

namespace rader {
class ParallelEngine;
}  // namespace rader

namespace rader::dag {

/// Evaluate both race definitions on `dag` using `engine`'s workers.
/// Equivalent to run_oracle(dag).
OracleResult run_oracle_parallel(const PerfDag& dag, ParallelEngine& engine);

}  // namespace rader::dag
