#include "dag/parallel_oracle.hpp"

#include <unordered_map>
#include <utility>
#include <vector>

#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "sched/parallel_engine.hpp"

namespace rader::dag {
namespace {

// Buckets identical to the serial oracle's: accesses per (byte, allocation
// generation), in serial order.
using Buckets =
    std::unordered_map<std::uintptr_t,
                       std::unordered_map<std::uint32_t,
                                          std::vector<std::size_t>>>;

Buckets bucket_accesses(const PerfDag& dag) {
  Buckets by_byte;
  std::unordered_map<std::uintptr_t, std::uint32_t> generation;
  std::size_t next_clear = 0;
  for (std::size_t i = 0; i < dag.accesses.size(); ++i) {
    while (next_clear < dag.clears.size() &&
           dag.clears[next_clear].before_access_index <= i) {
      const ClearEvent& c = dag.clears[next_clear];
      for (std::uintptr_t b = c.addr; b != c.addr + c.size; ++b) {
        ++generation[b];
      }
      ++next_clear;
    }
    const Access& a = dag.accesses[i];
    for (std::uintptr_t b = a.addr; b != a.addr + a.size; ++b) {
      by_byte[b][generation[b]].push_back(i);
    }
  }
  return by_byte;
}

bool bucket_races(const PerfDag& dag, const Reachability& reach,
                  const std::vector<std::size_t>& idxs) {
  for (std::size_t i = 0; i < idxs.size(); ++i) {
    const Access& a1 = dag.accesses[idxs[i]];
    for (std::size_t j = i + 1; j < idxs.size(); ++j) {
      const Access& a2 = dag.accesses[idxs[j]];
      if (a1.strand == a2.strand) continue;
      if (a1.kind != AccessKind::kWrite && a2.kind != AccessKind::kWrite) {
        continue;
      }
      if (!reach.parallel(a1.strand, a2.strand)) continue;
      if (a2.view_aware && a1.vid == a2.vid) continue;
      return true;
    }
  }
  return false;
}

}  // namespace

OracleResult run_oracle_parallel(const PerfDag& dag, ParallelEngine& engine) {
  OracleResult out;
  // Phase 1: transitive closure, level-parallel.
  const Reachability reach(dag, engine);

  // Phase 2: per-reducer peer-set checks and per-location pairwise checks,
  // each a parallel_for whose findings flow through vector-append reducers
  // (the analysis runs on the library's own runtime).
  std::unordered_map<ReducerId, std::vector<StrandId>> reads;
  for (const auto& r : dag.reducer_reads) reads[r.reducer].push_back(r.strand);
  std::vector<std::pair<ReducerId, const std::vector<StrandId>*>> read_groups;
  read_groups.reserve(reads.size());
  for (const auto& [h, strands] : reads) read_groups.emplace_back(h, &strands);

  const Buckets by_byte = bucket_accesses(dag);
  std::vector<std::pair<std::uintptr_t, const std::vector<std::size_t>*>>
      bucket_list;
  for (const auto& [byte, gens] : by_byte) {
    for (const auto& [gen, idxs] : gens) {
      (void)gen;
      bucket_list.emplace_back(byte, &idxs);
    }
  }

  engine.run([&] {
    reducer<monoid::vector_append<ReducerId>> racing_reducers;
    reducer<monoid::vector_append<std::uintptr_t>> racing_addrs;

    parallel_for<std::size_t>(0, read_groups.size(), [&](std::size_t g) {
      const auto& strands = *read_groups[g].second;
      for (std::size_t i = 0; i < strands.size(); ++i) {
        for (std::size_t j = i + 1; j < strands.size(); ++j) {
          if (!reach.same_peers(strands[i], strands[j])) {
            racing_reducers.update([&](std::vector<ReducerId>& v) {
              v.push_back(read_groups[g].first);
            });
            return;
          }
        }
      }
    });
    parallel_for<std::size_t>(0, bucket_list.size(), [&](std::size_t k) {
      if (bucket_races(dag, reach, *bucket_list[k].second)) {
        racing_addrs.update([&](std::vector<std::uintptr_t>& v) {
          v.push_back(bucket_list[k].first);
        });
      }
    });
    sync();

    for (const ReducerId h : racing_reducers.get_value()) {
      out.racing_reducers.insert(h);
    }
    for (const std::uintptr_t b : racing_addrs.get_value()) {
      out.racing_addrs.insert(b);
    }
  });

  out.any_view_read = !out.racing_reducers.empty();
  out.any_determinacy = !out.racing_addrs.empty();
  return out;
}

}  // namespace rader::dag
