// Random-program generator for the property tests.
//
// Generates a deterministic (seed-derived) tree of Cilk-style actions —
// spawns, calls, syncs, annotated reads/writes to a small shared pool,
// reducer updates, reducer-reads, and "raw view" accesses that poke a
// reducer's leftmost view storage directly (the Figure-1 class of bug:
// user code holding a pointer into the data a Reduce will later mutate).
//
// Executing a RandomProgram under the serial engine with a detector AND the
// Recorder attached yields, for the *same* execution, a detector verdict and
// a ground-truth oracle verdict to compare.  The same program object can be
// re-run under many steal specifications (state resets on each run).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/types.hpp"

namespace rader::dag {

struct RandomProgramParams {
  std::uint64_t seed = 1;
  std::uint32_t max_depth = 4;        // nesting depth of spawns/calls
  std::uint32_t max_actions = 10;     // actions per frame
  std::uint32_t num_reducers = 2;     // reducers created at the root
  std::uint32_t num_locations = 8;    // shared scalar pool size
  double p_spawn = 0.25;              // action-mix probabilities
  double p_call = 0.10;
  double p_sync = 0.15;
  double p_access = 0.25;
  double p_update = 0.15;
  double p_reducer_read = 0.05;
  double p_raw_view = 0.05;
  double p_update_shared = 0.0;  // updates that ALSO write a pool slot and
                                 // arm the reducer's Reduce to re-write it:
                                 // view-aware strands touching shared
                                 // memory, the Section-7 coverage target
};

class RandomProgram {
 public:
  explicit RandomProgram(const RandomProgramParams& params);
  ~RandomProgram();

  RandomProgram(const RandomProgram&) = delete;
  RandomProgram& operator=(const RandomProgram&) = delete;

  /// Execute under the current engine.  Re-runnable: resets shared state and
  /// creates fresh reducers each run.
  void operator()();

  /// Sum of reducer values from the last run — used by the determinism
  /// property (equal across all steal specifications).
  long reducer_total() const;

  /// Number of actions in the whole program (for test diagnostics).
  std::size_t action_count() const;

  /// Address range of the shared scalar pool (stable across runs), for
  /// restricting oracle/detector comparisons to view-oblivious memory.
  std::pair<std::uintptr_t, std::uintptr_t> pool_range() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rader::dag
