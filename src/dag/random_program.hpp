// Random-program generator for the property tests and the fuzz subsystem.
//
// Generates a deterministic (seed-derived) tree of Cilk-style actions —
// spawns, calls, syncs, annotated reads/writes to a small shared pool,
// reducer updates, reducer-reads, and "raw view" accesses that poke a
// reducer's leftmost view storage directly (the Figure-1 class of bug:
// user code holding a pointer into the data a Reduce will later mutate).
//
// Executing a RandomProgram under the serial engine with a detector AND the
// Recorder attached yields, for the *same* execution, a detector verdict and
// a ground-truth oracle verdict to compare.  The same program object can be
// re-run under many steal specifications (state resets on each run).
//
// The action tree is a public value type (ProgramTree) so that tooling can
// manipulate programs directly: dag/program_serial.hpp round-trips a tree
// through the `.rprog` text format, and fuzz/shrink.hpp delta-debugs a
// diverging tree down to a minimal reproducer.  A RandomProgram can be
// built either from a seed (the generator) or from an explicit tree.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/types.hpp"

namespace rader::dag {

struct RandomProgramParams {
  std::uint64_t seed = 1;
  std::uint32_t max_depth = 4;        // nesting depth of spawns/calls
  std::uint32_t max_actions = 10;     // actions per frame
  std::uint32_t num_reducers = 2;     // reducers created at the root
  std::uint32_t num_locations = 8;    // shared scalar pool size
  double p_spawn = 0.25;              // action-mix probabilities
  double p_call = 0.10;
  double p_sync = 0.15;
  double p_access = 0.25;
  double p_update = 0.15;
  double p_reducer_read = 0.05;
  double p_raw_view = 0.05;
  double p_update_shared = 0.0;  // updates that ALSO write a pool slot and
                                 // arm the reducer's Reduce to re-write it:
                                 // view-aware strands touching shared
                                 // memory, the Section-7 coverage target
};

/// One Cilk-style action of a program frame.
enum class ActionType : std::uint8_t {
  kSpawn,    // spawn child frame #child
  kCall,     // call child frame #child
  kSync,
  kRead,     // annotated read of pool[loc]
  kWrite,    // annotated write of pool[loc]
  kUpdate,   // reducer[red].update: annotated add to the view
  kUpdateShared,  // update that also writes pool[loc] and arms Reduce
  kGetValue, // reducer-read
  kSetValue, // reducer-read
  kRawRead,  // annotated read of reducer[red]'s leftmost view storage
  kRawWrite, // annotated write of reducer[red]'s leftmost view storage
};

struct Action {
  ActionType type = ActionType::kSync;
  std::uint32_t child = 0;  // for kSpawn / kCall
  std::uint32_t loc = 0;    // for kRead / kWrite / kUpdateShared
  std::uint32_t red = 0;    // reducer index
  long amount = 0;          // update increment / set value
};

/// A frame template: the actions of one frame plus its child frames.  Value
/// semantics (copyable) so tools can transform trees freely.
///
/// Invariant maintained by the generator, the parser, and the shrinker:
/// every kSpawn/kCall action's `child` indexes a distinct entry of
/// `children`, in order of appearance — the i-th spawn-or-call action of a
/// frame references child i.  (program_serial relies on this to nest child
/// frames at their spawn site.)
struct ProgramTree {
  std::vector<Action> actions;
  std::vector<ProgramTree> children;

  /// Total number of actions in this subtree.
  std::size_t action_count() const;
};

class RandomProgram {
 public:
  /// Generate a seed-derived tree per `params`.
  explicit RandomProgram(const RandomProgramParams& params);

  /// Adopt an explicit action tree (from program_serial::parse_reproducer or
  /// fuzz/shrink).  Only `params.num_reducers` / `params.num_locations` (and
  /// the provenance `seed`) are meaningful; the tree is taken as-is.  The
  /// tree must be valid for the params (see program_serial validation).
  RandomProgram(ProgramTree tree, const RandomProgramParams& params);

  ~RandomProgram();

  RandomProgram(const RandomProgram&) = delete;
  RandomProgram& operator=(const RandomProgram&) = delete;

  /// Execute under the current engine.  Re-runnable: resets shared state and
  /// creates fresh reducers each run.
  void operator()();

  /// Sum of reducer values from the last run — used by the determinism
  /// property (equal across all steal specifications).
  long reducer_total() const;

  /// Number of actions in the whole program (for test diagnostics).
  std::size_t action_count() const;

  /// Address range of the shared scalar pool (stable across runs), for
  /// restricting oracle/detector comparisons to view-oblivious memory.
  std::pair<std::uintptr_t, std::uintptr_t> pool_range() const;

  /// The program's action tree and construction parameters.
  const ProgramTree& tree() const;
  const RandomProgramParams& params() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rader::dag
