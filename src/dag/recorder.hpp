// Recorder: a Tool that reconstructs the performance DAG of an execution.
//
// The recorder consumes the same event stream as the detectors and builds
// the PerfDag — strands, parallel-control edges, reduce strands with their
// reduce-tree dependencies, annotated accesses and reducer-reads.  The
// brute-force oracles (dag/oracle.hpp) then evaluate the paper's race
// definitions directly on the DAG, giving an independent ground truth for
// validating Peer-Set, SP-bags and SP+ on the very same execution (attach
// both via ToolChain).
//
// Edge construction rules:
//  * spawn strand → child's first strand, and spawn strand → continuation;
//  * called child's last strand → continuation (series);
//  * spawned child's last strand → the join point of its view segment (a
//    reduce strand consuming that view, or the sync);
//  * a STOLEN continuation depends only on its spawn strand (it runs on a
//    thief, in parallel with everything the child does);
//  * a reduce strand merging views (A, B) has in-edges from every dangling
//    tail of segments A and B, and becomes the sole tail of A;
//  * the sync strand has in-edges from every remaining dangling tail.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dag/graph.hpp"
#include "tool/tool.hpp"

namespace rader::dag {

class Recorder final : public Tool {
 public:
  const PerfDag& dag() const { return dag_; }
  PerfDag take() { return std::move(dag_); }

  void on_run_begin() override;
  void on_frame_enter(FrameId frame, FrameId parent, FrameKind kind,
                      ViewId vid) override;
  void on_frame_return(FrameId frame, FrameId parent, FrameKind kind) override;
  void on_sync(FrameId frame) override;
  void on_steal(FrameId frame, std::uint32_t cont_index,
                ViewId new_vid) override;
  void on_reduce(FrameId frame, ViewId left_vid, ViewId right_vid) override;
  void on_access(AccessKind kind, std::uintptr_t addr, std::size_t size,
                 bool view_aware, ViewId vid, SrcTag tag) override;
  void on_reducer_op(ReducerOp op, ReducerId h, SrcTag tag) override;
  void on_clear(std::uintptr_t addr, std::size_t size) override;

 private:
  struct RFrame {
    FrameId id = kInvalidFrame;
    FrameKind kind = FrameKind::kRoot;
    bool in_reduce = false;           // this frame or an ancestor is a Reduce
    ViewId cur_vid = kInvalidView;
    ViewId entry_vid = kInvalidView;
    StrandId cur = kInvalidStrand;    // current strand (invalid = suspended)
    StrandId last_spawn = kInvalidStrand;  // strand of the most recent spawn
    // Dangling tails per live view segment: strands that must precede the
    // reduce strand destroying that view (or the sync).
    std::unordered_map<ViewId, std::vector<StrandId>> tails;
  };

  StrandId new_strand(const RFrame& f, ViewId vid);
  void edge(StrandId a, StrandId b) { dag_.edges.emplace_back(a, b); }
  /// Current strand of the top frame, creating one (with in-edges from the
  /// current segment's tails) if the frame was suspended by a reduce.
  StrandId ensure_cur();

  PerfDag dag_;
  std::vector<RFrame> stack_;
};

}  // namespace rader::dag
