// Monoid definitions for reducer hyperobjects.
//
// "A reducer is defined semantically in terms of an algebraic monoid: a
// triple (T, ⊗, e), where T is a set and ⊗ is an associative binary
// operation over T with identity e."  A monoid here is a stateless type
// providing:
//
//   using value_type = T;
//   static T identity();                    // e  (Create-Identity)
//   static void reduce(T& left, T& right);  // left = left ⊗ right  (Reduce)
//
// reduce may pillage `right` (it is destroyed afterwards), which lets
// list/vector monoids splice in O(1)/O(n) without copies.  Only
// associativity is required — NOT commutativity — so reducers such as list
// append and string append produce the serial-order result.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace rader {

template <typename M>
concept ReducerMonoid = requires(typename M::value_type& a,
                                 typename M::value_type& b) {
  { M::identity() } -> std::convertible_to<typename M::value_type>;
  M::reduce(a, b);
};

namespace monoid {

/// Sum: (T, +, 0).  The Cilk Plus reducer_opadd.
template <typename T>
struct op_add {
  using value_type = T;
  static T identity() { return T{}; }
  static void reduce(T& left, T& right) { left += right; }
};

/// Product: (T, *, 1).
template <typename T>
struct op_mul {
  using value_type = T;
  static T identity() { return T{1}; }
  static void reduce(T& left, T& right) { left *= right; }
};

/// Minimum: (T, min, +inf).  The Cilk Plus reducer_min.
template <typename T>
struct op_min {
  using value_type = T;
  static T identity() { return std::numeric_limits<T>::max(); }
  static void reduce(T& left, T& right) { left = std::min(left, right); }
};

/// Maximum: (T, max, -inf).
template <typename T>
struct op_max {
  using value_type = T;
  static T identity() { return std::numeric_limits<T>::lowest(); }
  static void reduce(T& left, T& right) { left = std::max(left, right); }
};

/// Bitwise AND: (T, &, ~0).
template <typename T>
struct op_and {
  using value_type = T;
  static T identity() { return static_cast<T>(~T{}); }
  static void reduce(T& left, T& right) { left &= right; }
};

/// Bitwise OR: (T, |, 0).
template <typename T>
struct op_or {
  using value_type = T;
  static T identity() { return T{}; }
  static void reduce(T& left, T& right) { left |= right; }
};

/// Bitwise XOR: (T, ^, 0).
template <typename T>
struct op_xor {
  using value_type = T;
  static T identity() { return T{}; }
  static void reduce(T& left, T& right) { left ^= right; }
};

/// Ordered concatenation of vectors — the "hypervector" the collision
/// benchmark uses.  Associative but NOT commutative: the final vector is the
/// serial-order concatenation of all appends.
template <typename T>
struct vector_append {
  using value_type = std::vector<T>;
  static value_type identity() { return {}; }
  static void reduce(value_type& left, value_type& right) {
    if (left.empty()) {
      left = std::move(right);
      return;
    }
    left.insert(left.end(), std::make_move_iterator(right.begin()),
                std::make_move_iterator(right.end()));
  }
};

/// Ordered string concatenation.
struct string_append {
  using value_type = std::string;
  static value_type identity() { return {}; }
  static void reduce(value_type& left, value_type& right) {
    left += right;
  }
};

/// Minimum with argmin payload: value_type = (key, payload).
template <typename K, typename V>
struct op_min_index {
  using value_type = std::pair<K, V>;
  static value_type identity() {
    return {std::numeric_limits<K>::max(), V{}};
  }
  static void reduce(value_type& left, value_type& right) {
    if (right.first < left.first) left = std::move(right);
  }
};

/// Maximum with argmax payload.
template <typename K, typename V>
struct op_max_index {
  using value_type = std::pair<K, V>;
  static value_type identity() {
    return {std::numeric_limits<K>::lowest(), V{}};
  }
  static void reduce(value_type& left, value_type& right) {
    if (right.first > left.first) left = std::move(right);
  }
};

}  // namespace monoid
}  // namespace rader
