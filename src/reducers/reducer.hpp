// reducer<Monoid>: the reducer hyperobject.
//
// A reducer coordinates parallel updates to a shared variable by giving each
// (simulated or real) stolen subcomputation its own *view*; views are folded
// back together with the monoid's associative reduce in serial order, so an
// ostensibly deterministic program gets the serial result no matter how the
// schedule played out.
//
// Operation taxonomy (matters to the detectors!):
//   * get_value / set_value / construction / destruction are REDUCER-READS —
//     these are what the Peer-Set algorithm checks for view-read races.
//   * update(fn) (and the operator sugar built on it) runs fn on the current
//     view inside a view-aware bracket; the runtime lazily Create-Identities
//     a view if the current epoch has none.  Accesses inside the bracket are
//     view-aware strands for SP+.
//   * Reduce operations are invoked by the engine (never by user code).
//
// Without an installed engine a reducer degrades to a plain value — the
// serial projection.
#pragma once

#include <new>
#include <utility>

#include "reducers/monoid.hpp"
#include "runtime/api.hpp"
#include "runtime/engine.hpp"
#include "runtime/hyperobject.hpp"
#include "runtime/view_arena.hpp"

namespace rader {

template <ReducerMonoid M>
class reducer : public HyperobjectBase {
 public:
  using View = typename M::value_type;

  explicit reducer(SrcTag tag = {"reducer"})
      : leftmost_(M::identity()), tag_(tag) {
    if (Engine* e = Engine::current()) {
      e->register_reducer(this, &leftmost_, tag_);
    }
  }

  /// Construct holding `init` as the leftmost view's value (set_value at
  /// birth, as in the paper's Figure 1 line 3 idiom).
  explicit reducer(View init, SrcTag tag = {"reducer"})
      : leftmost_(std::move(init)), tag_(tag) {
    if (Engine* e = Engine::current()) {
      e->register_reducer(this, &leftmost_, tag_);
    }
  }

  ~reducer() override {
    if (Engine* e = Engine::current()) e->unregister_reducer(this, tag_);
  }

  reducer(const reducer&) = delete;
  reducer& operator=(const reducer&) = delete;

  /// Apply `fn` to the current view inside a view-aware bracket.  This is
  /// the Update operation; `fn` should annotate the view memory it touches
  /// (shadow_read/shadow_write) if races on it are to be detectable.
  template <typename F>
  void update(F&& fn, SrcTag tag = {}) {
    Engine* e = Engine::current();
    if (e == nullptr) {
      fn(leftmost_);
      return;
    }
    const SrcTag t = tag.label[0] != '\0' ? tag : tag_;
    View* v = static_cast<View*>(e->current_view(this, t));
    e->begin_update(this, t);
    struct Guard {
      Engine* eng;
      HyperobjectBase* r;
      ~Guard() { eng->end_update(r); }
    } guard{e, this};
    fn(*v);
  }

  /// The current view, without the view-aware bracket.  Use for read-mostly
  /// inspection inside update contexts; prefer update() for mutation.
  View& view() {
    Engine* e = Engine::current();
    if (e == nullptr) return leftmost_;
    return *static_cast<View*>(e->current_view(this, tag_));
  }

  /// Reducer-read: retrieve the value.  Deterministic only at peer-safe
  /// program points (e.g. after the sync that joins all updaters) — that is
  /// exactly what Peer-Set checks.
  View get_value(SrcTag tag = {"get_value"}) {
    Engine* e = Engine::current();
    if (e == nullptr) return leftmost_;
    e->reducer_read(this, ReducerOp::kGetValue, tag);
    return *static_cast<View*>(e->current_view(this, tag));
  }

  /// Reducer-read: replace the value of the current view.
  void set_value(View v, SrcTag tag = {"set_value"}) {
    Engine* e = Engine::current();
    if (e == nullptr) {
      leftmost_ = std::move(v);
      return;
    }
    e->reducer_read(this, ReducerOp::kSetValue, tag);
    *static_cast<View*>(e->current_view(this, tag)) = std::move(v);
  }

  /// Reducer-read: move the value out of the current view (which is left in
  /// a valid moved-from state).  The only read path for move-only views.
  View take_value(SrcTag tag = {"take_value"}) {
    Engine* e = Engine::current();
    if (e == nullptr) return std::move(leftmost_);
    e->reducer_read(this, ReducerOp::kGetValue, tag);
    return std::move(*static_cast<View*>(e->current_view(this, tag)));
  }

  /// Cilk Plus naming aliases.
  View move_out(SrcTag tag = {"move_out"}) { return get_value(tag); }
  void move_in(View v, SrcTag tag = {"move_in"}) {
    set_value(std::move(v), tag);
  }

  // ---- Operator sugar for scalar-ish monoids.  Each is an Update whose
  // ---- access to the view scalar is annotated, so SP+ sees the strand.
  template <typename U>
  reducer& operator+=(const U& rhs)
    requires requires(View& v, const U& u) { v += u; }
  {
    update([&](View& v) {
      shadow_write(&v, sizeof(View));
      v += rhs;
    });
    return *this;
  }

  template <typename U>
  reducer& operator*=(const U& rhs)
    requires requires(View& v, const U& u) { v *= u; }
  {
    update([&](View& v) {
      shadow_write(&v, sizeof(View));
      v *= rhs;
    });
    return *this;
  }

  /// For min/max-style monoids: fold one candidate value in.
  void include(View candidate) {
    update([&](View& v) {
      shadow_write(&v, sizeof(View));
      M::reduce(v, candidate);
    });
  }

  // ---- HyperobjectBase (engine-facing) ----
  // Identity views live in the deterministic thread-local arena, not on the
  // general heap: with `new`, two executions with identical control flow
  // could see their views at different addresses (allocator free-list
  // state), defeating prefix-sharing sweeps, which verify that re-executed
  // prefixes touch identical bytes (runtime/view_arena.hpp).  hyper_destroy
  // therefore only destructs; the storage is rewound at the next run.
  void* hyper_create_identity() override {
    void* mem = view_arena::allocate(sizeof(View), alignof(View));
    return new (mem) View(M::identity());
  }
  void hyper_reduce(void* left, void* right) override {
    M::reduce(*static_cast<View*>(left), *static_cast<View*>(right));
  }
  void hyper_destroy(void* view) override {
    static_cast<View*>(view)->~View();
  }
  void* hyper_leftmost() override { return &leftmost_; }
  std::size_t hyper_view_size() const override { return sizeof(View); }
  SrcTag hyper_tag() const override { return tag_; }

 private:
  View leftmost_;  // the leftmost view: initial and final value
  SrcTag tag_;
};

}  // namespace rader
