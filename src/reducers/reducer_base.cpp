#include "reducers/reducer.hpp"

namespace rader {

// Explicit instantiations of the common scalar reducers: catches template
// regressions at library build time and speeds up downstream compiles.
template class reducer<monoid::op_add<long>>;
template class reducer<monoid::op_add<double>>;
template class reducer<monoid::op_max<long>>;
template class reducer<monoid::op_min<long>>;
template class reducer<monoid::vector_append<int>>;
template class reducer<monoid::string_append>;

}  // namespace rader
