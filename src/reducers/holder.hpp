// holder<T>: the holder hyperobject.
//
// A holder is the degenerate reducer whose reduce operation simply discards
// the right view — (T, first, e) — giving each parallel strand what amounts
// to deterministic "strand-local" scratch storage: a strand sees either the
// value it last put there or a fresh identity view, never a value written
// by a logically parallel strand.  Cilk++ shipped holders alongside
// reducers as the other common hyperobject; they reuse this repository's
// entire view machinery (lazy identity creation on steal, folding at sync).
//
// Because the final value after a sync depends on which view survives (the
// leftmost), holders are for scratch space whose value is consumed WITHIN a
// strand, not for results — get_value at the end simply returns the
// leftmost view's last content, matching the serial projection.
#pragma once

#include "reducers/reducer.hpp"

namespace rader {

namespace monoid {

/// (T, keep-left, T{}): associative — (a⊗b)⊗c = a = a⊗(b⊗c).
template <typename T>
struct holder_keep_left {
  using value_type = T;
  static T identity() { return T{}; }
  static void reduce(T& /*left*/, T& /*right*/) {}
};

}  // namespace monoid

/// Scratch-space hyperobject: use view() / update() to access the
/// strand-local value.
template <typename T>
using holder = reducer<monoid::holder_keep_left<T>>;

}  // namespace rader
