#include "reducers/ostream_monoid.hpp"

namespace rader {

void ostream_reducer::flush(SrcTag tag) {
  Engine* e = Engine::current();
  if (e != nullptr) e->reducer_read(&red_, ReducerOp::kGetValue, tag);
  OstreamView& v = red_.view();
  const std::string out = v.take();
  if (!out.empty()) {
    os_->write(out.data(), static_cast<std::streamsize>(out.size()));
    bytes_written_ += out.size();
  }
}

}  // namespace rader
