// ostream_reducer: the analog of Cilk Plus's reducer_ostream.
//
// Parallel subcomputations write to their own view's buffer; reduction
// concatenates buffers in serial order, so the final stream contents are
// identical to a serial run.  The paper's dedup and ferret ports "use a
// reducer_ostream to write [their] output".
//
// flush() and the destructor retrieve the buffered output — reducer-reads
// that Peer-Set checks: flushing while spawned writers are outstanding is a
// view-read race.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace rader {

/// One view of the ostream reducer: an in-order byte buffer.  Appends
/// annotate the view object so determinacy races on a view are detectable.
class OstreamView {
 public:
  void append(std::string_view s) {
    shadow_write(this, sizeof(std::size_t), SrcTag{"ostream-view append"});
    buf_ += s;
  }

  const std::string& str() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  void splice_back(OstreamView& right) {
    shadow_write(this, sizeof(std::size_t), SrcTag{"ostream-view reduce"});
    shadow_read(&right, sizeof(std::size_t), SrcTag{"ostream-view reduce"});
    buf_ += right.buf_;
  }

 private:
  std::string buf_;
};

struct ostream_append {
  using value_type = OstreamView;
  static value_type identity() { return {}; }
  static void reduce(value_type& left, value_type& right) {
    left.splice_back(right);
  }
};

/// Reducer wrapper that targets a std::ostream.
class ostream_reducer {
 public:
  explicit ostream_reducer(std::ostream& os, SrcTag tag = {"ostream_reducer"})
      : os_(&os), red_(tag) {}

  ~ostream_reducer() { flush(); }

  ostream_reducer(const ostream_reducer&) = delete;
  ostream_reducer& operator=(const ostream_reducer&) = delete;

  /// Buffered, view-local write.
  ostream_reducer& write(std::string_view s) {
    red_.update([&](OstreamView& v) { v.append(s); });
    return *this;
  }

  ostream_reducer& operator<<(std::string_view s) { return write(s); }
  ostream_reducer& operator<<(const char* s) { return write(s); }
  ostream_reducer& operator<<(char c) { return write({&c, 1}); }

  template <typename T>
    requires std::is_arithmetic_v<T>
  ostream_reducer& operator<<(T v) {
    return write(std::to_string(v));
  }

  /// Reducer-read: drain the (deterministic, serial-order) buffered output
  /// to the underlying stream.
  void flush(SrcTag tag = {"ostream flush"});

  /// Bytes written so far (reducer-read).
  std::size_t bytes_written() const { return bytes_written_; }

 private:
  std::ostream* os_;
  reducer<ostream_append> red_;
  std::size_t bytes_written_ = 0;
};

}  // namespace rader
