#include "apps/dedup.hpp"

#include <sstream>
#include <unordered_map>

#include "reducers/ostream_monoid.hpp"
#include "runtime/api.hpp"
#include "support/common.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace rader::apps {
namespace {

// ---- LZ77 ---------------------------------------------------------------
// Token stream: 0x00 <len:u16> <literal bytes>  |  0x01 <dist:u16> <len:u16>.
constexpr std::size_t kWindow = 1 << 15;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 65535;

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

std::uint16_t get_u16(const std::string& s, std::size_t& i) {
  RADER_CHECK_MSG(i + 2 <= s.size(), "truncated LZ77 stream");
  const auto lo = static_cast<unsigned char>(s[i]);
  const auto hi = static_cast<unsigned char>(s[i + 1]);
  i += 2;
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

}  // namespace

std::string lz77_compress(const char* data, std::size_t n) {
  std::string out;
  out.reserve(n / 2 + 16);
  // Hash chains over 4-byte prefixes.
  constexpr std::size_t kHashBits = 15;
  constexpr std::size_t kHashSize = 1 << kHashBits;
  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(n, -1);
  const auto hash4 = [&](std::size_t i) {
    std::uint32_t v;
    __builtin_memcpy(&v, data + i, 4);
    return static_cast<std::size_t>((v * 2654435761u) >> (32 - kHashBits));
  };

  std::size_t i = 0;
  std::size_t literal_start = 0;
  const auto flush_literals = [&](std::size_t end) {
    std::size_t pos = literal_start;
    while (pos < end) {
      const std::size_t len = std::min<std::size_t>(end - pos, kMaxMatch);
      out.push_back(0x00);
      put_u16(out, static_cast<std::uint16_t>(len));
      out.append(data + pos, len);
      pos += len;
    }
  };

  while (i < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      const std::size_t h = hash4(i);
      int tries = 16;
      for (std::int32_t cand = head[h]; cand >= 0 && tries-- > 0;
           cand = prev[cand]) {
        const auto c = static_cast<std::size_t>(cand);
        if (i - c > kWindow) break;
        std::size_t len = 0;
        const std::size_t limit = std::min(n - i, kMaxMatch);
        while (len < limit && data[c + len] == data[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
        }
      }
      prev[i] = head[h];
      head[h] = static_cast<std::int32_t>(i);
    }
    if (best_len >= kMinMatch) {
      flush_literals(i);
      out.push_back(0x01);
      put_u16(out, static_cast<std::uint16_t>(best_dist));
      put_u16(out, static_cast<std::uint16_t>(best_len));
      // Index the skipped positions so later matches can find them.
      const std::size_t end = i + best_len;
      for (++i; i < end && i + kMinMatch <= n; ++i) {
        const std::size_t h = hash4(i);
        prev[i] = head[h];
        head[h] = static_cast<std::int32_t>(i);
      }
      i = end;
      literal_start = end;
    } else {
      ++i;
    }
  }
  flush_literals(n);
  return out;
}

std::string lz77_decompress(const std::string& compressed) {
  std::string out;
  std::size_t i = 0;
  while (i < compressed.size()) {
    const auto tag = static_cast<unsigned char>(compressed[i++]);
    if (tag == 0x00) {
      const std::uint16_t len = get_u16(compressed, i);
      RADER_CHECK_MSG(i + len <= compressed.size(), "truncated literal run");
      out.append(compressed, i, len);
      i += len;
    } else if (tag == 0x01) {
      const std::uint16_t dist = get_u16(compressed, i);
      const std::uint16_t len = get_u16(compressed, i);
      RADER_CHECK_MSG(dist != 0 && dist <= out.size(), "bad match distance");
      // Byte-by-byte: matches may overlap their own output.
      std::size_t src = out.size() - dist;
      for (std::uint16_t k = 0; k < len; ++k) out.push_back(out[src + k]);
    } else {
      RADER_UNREACHABLE("bad LZ77 token tag");
    }
  }
  return out;
}

// ---- Content-defined chunking --------------------------------------------

std::vector<std::uint32_t> content_chunks(const std::string& input,
                                          const DedupParams& params) {
  // Sliding-window polynomial rolling hash (as in LBFS/Rabin chunking): the
  // hash depends only on the last kWindowBytes, so chunk boundaries
  // RESYNCHRONIZE inside repeated content regardless of its offset — the
  // property that makes deduplication effective.
  constexpr std::uint32_t kWindowBytes = 48;
  constexpr std::uint64_t kBase = 31;
  std::uint64_t base_pow_w = 1;  // kBase^kWindowBytes
  for (std::uint32_t i = 0; i < kWindowBytes; ++i) base_pow_w *= kBase;

  std::vector<std::uint32_t> ends;
  const std::uint64_t mask = (std::uint64_t{1} << params.boundary_bits) - 1;
  std::uint64_t roll = 0;
  std::uint32_t start = 0;
  for (std::uint32_t i = 0; i < input.size(); ++i) {
    roll = roll * kBase + static_cast<unsigned char>(input[i]) + 1;
    if (i >= start + kWindowBytes) {
      roll -= base_pow_w *
              (static_cast<unsigned char>(input[i - kWindowBytes]) + 1);
    }
    const std::uint32_t len = i - start + 1;
    const bool boundary =
        len >= params.min_chunk && (mix64(roll) & mask) == mask;
    if (boundary || len >= params.max_chunk) {
      ends.push_back(i + 1);
      start = i + 1;
      roll = 0;
    }
  }
  if (ends.empty() || ends.back() != input.size()) {
    ends.push_back(static_cast<std::uint32_t>(input.size()));
  }
  return ends;
}

// ---- Compression pipeline -------------------------------------------------

std::string make_dedup_input(std::size_t bytes, double dup_ratio,
                             std::uint64_t seed) {
  Rng rng(seed);
  static constexpr const char* kWords[] = {
      "stream", "chunk",  "pennant", "reducer", "monoid", "steal",
      "strand", "worker", "view",    "sync",    "spawn",  "race"};
  std::vector<std::string> blocks;
  std::string out;
  out.reserve(bytes + 1024);
  while (out.size() < bytes) {
    if (!blocks.empty() && rng.chance(dup_ratio)) {
      out += blocks[rng.below(blocks.size())];
      continue;
    }
    std::string block;
    const std::size_t words = 200 + rng.below(400);
    for (std::size_t w = 0; w < words; ++w) {
      block += kWords[rng.below(std::size(kWords))];
      block.push_back(rng.chance(0.15) ? '\n' : ' ');
    }
    out += block;
    blocks.push_back(std::move(block));
  }
  out.resize(bytes);
  return out;
}

DedupStats dedup_compress(const std::string& input, std::string& archive,
                          const DedupParams& params) {
  DedupStats stats;
  stats.input_bytes = input.size();

  const std::vector<std::uint32_t> ends = content_chunks(input, params);
  const auto n_chunks = static_cast<std::uint32_t>(ends.size());
  stats.total_chunks = n_chunks;

  // Serial order-defining pass: fingerprint each chunk, assign ids, and
  // decide first occurrences.
  struct ChunkInfo {
    std::uint32_t begin, end;
    std::uint32_t ref;  // first-occurrence chunk index (== self if unique)
  };
  std::vector<ChunkInfo> chunks(n_chunks);
  std::unordered_map<std::uint64_t, std::uint32_t> first_seen;
  for (std::uint32_t c = 0; c < n_chunks; ++c) {
    chunks[c].begin = c == 0 ? 0 : ends[c - 1];
    chunks[c].end = ends[c];
    const std::uint64_t fp =
        fnv1a(input.data() + chunks[c].begin, chunks[c].end - chunks[c].begin);
    auto [it, inserted] = first_seen.emplace(fp, c);
    chunks[c].ref = it->second;
    if (inserted) ++stats.unique_chunks;
  }

  // Parallel phase: compress unique chunks, emit the archive in order via
  // the ostream reducer.
  std::ostringstream sink;
  {
    ostream_reducer out(sink, SrcTag{"dedup archive stream"});
    parallel_for<std::uint32_t>(
        0, n_chunks,
        [&](std::uint32_t c) {
          const ChunkInfo& info = chunks[c];
          if (info.ref != c) {
            out << "R " << info.ref << "\n";
            return;
          }
          const std::string packed =
              lz77_compress(input.data() + info.begin, info.end - info.begin);
          out << "U " << c << " " << (info.end - info.begin) << " "
              << packed.size() << "\n";
          out.write(packed);
          out << "\n";
        },
        /*grain=*/1);
    sync();
    out.flush(SrcTag{"dedup final flush"});
  }
  archive = sink.str();
  stats.output_bytes = archive.size();
  return stats;
}

std::string dedup_restore(const std::string& archive) {
  std::string out;
  std::unordered_map<std::uint32_t, std::pair<std::size_t, std::size_t>>
      chunk_spans;  // id -> [begin, end) in `out`
  std::size_t i = 0;
  const auto read_token = [&]() -> std::string {
    while (i < archive.size() &&
           (archive[i] == ' ' || archive[i] == '\n')) {
      ++i;
    }
    std::size_t j = i;
    while (j < archive.size() && archive[j] != ' ' && archive[j] != '\n') ++j;
    std::string tok = archive.substr(i, j - i);
    i = j;
    return tok;
  };
  // Checked numeric parse: malformed archives must hit the panic path, not
  // an uncaught std::stoul exception.
  const auto read_number = [&]() -> unsigned long {
    const std::string tok = read_token();
    RADER_CHECK_MSG(!tok.empty() &&
                        tok.find_first_not_of("0123456789") == std::string::npos,
                    "malformed archive: expected a number");
    return std::stoul(tok);
  };
  while (true) {
    const std::string tag = read_token();
    if (tag.empty()) break;
    if (tag == "R") {
      const auto ref = static_cast<std::uint32_t>(read_number());
      const auto span = chunk_spans.at(ref);
      const std::string dup = out.substr(span.first, span.second - span.first);
      out += dup;
    } else if (tag == "U") {
      const auto id = static_cast<std::uint32_t>(read_number());
      const auto raw_len = read_number();
      const auto packed_len = read_number();
      RADER_CHECK_MSG(i < archive.size() && archive[i] == '\n',
                      "malformed archive header");
      ++i;
      RADER_CHECK_MSG(i + packed_len <= archive.size(), "truncated archive");
      const std::string chunk =
          lz77_decompress(archive.substr(i, packed_len));
      RADER_CHECK_MSG(chunk.size() == raw_len, "chunk length mismatch");
      i += packed_len;
      chunk_spans[id] = {out.size(), out.size() + chunk.size()};
      out += chunk;
    } else {
      RADER_UNREACHABLE("bad archive tag");
    }
  }
  return out;
}

}  // namespace rader::apps
