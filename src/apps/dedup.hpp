// dedup benchmark: deduplicating compression, after the PARSEC `dedup`
// kernel the paper ports to Cilk ("We converted the pipeline programs dedup
// and ferret ... to use Cilk linguistics and a reducer_ostream to write
// [their] output").
//
// Pipeline:
//   1. content-defined chunking (rolling-hash boundaries, as in LBFS);
//   2. chunk fingerprinting (FNV-1a 64);
//   3. first-occurrence detection (serial, order-defining);
//   4. parallel LZ77 compression of unique chunks;
//   5. in-order output via an ostream reducer: `U <id> <len> <bytes>` for a
//      unique chunk, `R <id>` for a repeat.
//
// A decompressor ("restore") makes the round-trip testable, and a
// deterministic generator produces repetitive input with a controllable
// duplicate ratio.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rader::apps {

struct DedupParams {
  std::uint32_t min_chunk = 256;
  std::uint32_t max_chunk = 8192;
  std::uint32_t boundary_bits = 10;  // expected chunk ≈ 2^bits bytes
};

struct DedupStats {
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  std::uint32_t total_chunks = 0;
  std::uint32_t unique_chunks = 0;
};

/// Synthetic input: concatenation of paragraph-ish blocks drawn from a small
/// dictionary, so chunking finds many duplicates (dup_ratio of blocks are
/// repeats of earlier ones).
std::string make_dedup_input(std::size_t bytes, double dup_ratio,
                             std::uint64_t seed);

/// Compress `input` into `archive` (parallel).  Returns statistics.
DedupStats dedup_compress(const std::string& input, std::string& archive,
                          const DedupParams& params = {});

/// Restore the original bytes from an archive.  Aborts on malformed input.
std::string dedup_restore(const std::string& archive);

/// Plain LZ77 codec used for chunk payloads (exposed for unit tests).
std::string lz77_compress(const char* data, std::size_t n);
std::string lz77_decompress(const std::string& compressed);

/// Content-defined chunk boundaries (exposed for unit tests): returns chunk
/// end offsets, last == input size.
std::vector<std::uint32_t> content_chunks(const std::string& input,
                                          const DedupParams& params);

}  // namespace rader::apps
