#include "apps/pbfs.hpp"

#include <deque>

#include "apps/bag.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace rader::apps {

std::vector<std::uint32_t> pbfs(const Graph& g, std::uint32_t source,
                                std::uint32_t grain) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreached);
  if (g.num_vertices() == 0) return dist;
  dist[source] = 0;

  Bag<std::uint32_t> layer;
  layer.insert(source);
  std::uint32_t d = 0;

  while (!layer.empty()) {
    reducer<bag_monoid<std::uint32_t>> next(SrcTag{"pbfs next-layer bag"});
    const std::uint32_t next_dist = d + 1;
    layer.process_parallel(
        [&](std::uint32_t u) {
          for (const std::uint32_t v : g.neighbors(u)) {
            // Benign-race discovery, as in the PBFS paper: concurrent
            // discoverers may both see kUnreached and both write the same
            // next_dist / insert v twice; distances stay correct.  (The
            // dist array is deliberately left unannotated — see DESIGN.md.)
            if (dist[v] == kUnreached) {
              dist[v] = next_dist;
              next.update(
                  [&](Bag<std::uint32_t>& b) { b.insert(v); },
                  SrcTag{"pbfs bag insert"});
            }
          }
        },
        grain);
    sync();
    layer = next.take_value(SrcTag{"pbfs layer move-out"});
    ++d;
  }
  return dist;
}

std::vector<std::uint32_t> serial_bfs(const Graph& g, std::uint32_t source) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreached);
  if (g.num_vertices() == 0) return dist;
  std::deque<std::uint32_t> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    for (const std::uint32_t v : g.neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace rader::apps
