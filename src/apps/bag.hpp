// The Bag data structure of Leiserson and Schardl's work-efficient parallel
// BFS [27] — the user-defined reducer pbfs is benchmarked with.
//
// A *pennant* is a tree of 2^k nodes whose root has a single child that is a
// complete binary tree of 2^k − 1 nodes.  Two pennants of equal size combine
// into one of twice the size with two pointer writes; a bag is a sequence of
// pennants indexed by rank — a binary-counter representation of its size —
// giving O(1) amortized insert and O(log n) union.  Union is exactly the
// reducer's Reduce operation, so combining views is cheap no matter how many
// elements each holds.
//
// The pointer splices in insert/union are annotated (shadow_write), so the
// view-aware strands that execute Bag reduces are visible to SP+ — a Bag
// node reached through a stale user pointer while a Reduce splices it is the
// Figure-1 class of determinacy race.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/api.hpp"
#include "support/common.hpp"

namespace rader::apps {

template <typename T>
class Bag {
 public:
  Bag() = default;

  Bag(Bag&& other) noexcept
      : backbone_(std::move(other.backbone_)), size_(other.size_) {
    other.backbone_.clear();
    other.size_ = 0;
  }

  Bag& operator=(Bag&& other) noexcept {
    if (this != &other) {
      clear();
      backbone_ = std::move(other.backbone_);
      size_ = other.size_;
      other.backbone_.clear();
      other.size_ = 0;
    }
    return *this;
  }

  Bag(const Bag&) = delete;
  Bag& operator=(const Bag&) = delete;

  ~Bag() { clear(); }

  bool empty() const { return size_ == 0; }
  std::uint64_t size() const { return size_; }

  /// O(1) amortized: insert as a singleton pennant and propagate carries.
  void insert(T value) {
    Node* carry = new Node{std::move(value), nullptr, nullptr};
    std::size_t rank = 0;
    while (rank < backbone_.size() && backbone_[rank] != nullptr) {
      carry = pennant_union(backbone_[rank], carry);
      backbone_[rank] = nullptr;
      ++rank;
    }
    if (rank == backbone_.size()) backbone_.push_back(nullptr);
    backbone_[rank] = carry;
    ++size_;
  }

  /// O(log n) union: ripple-carry addition over the backbones.  `other` is
  /// drained.  This is the Bag reducer's Reduce operation.
  void merge(Bag&& other) {
    if (other.backbone_.size() > backbone_.size()) {
      backbone_.resize(other.backbone_.size(), nullptr);
    }
    Node* carry = nullptr;
    for (std::size_t rank = 0; rank < backbone_.size(); ++rank) {
      Node* a = backbone_[rank];
      Node* b = rank < other.backbone_.size() ? other.backbone_[rank] : nullptr;
      // Full adder on pennants of size 2^rank.
      const int bits = (a != nullptr) + (b != nullptr) + (carry != nullptr);
      switch (bits) {
        case 0:
          backbone_[rank] = nullptr;
          break;
        case 1:
          backbone_[rank] = a ? a : (b ? b : carry);
          carry = nullptr;
          break;
        case 2: {
          Node* x = a ? a : b;
          Node* y = (x == a) ? (b ? b : carry) : carry;
          backbone_[rank] = nullptr;
          carry = pennant_union(x, y);
          break;
        }
        case 3:
          backbone_[rank] = carry;
          carry = pennant_union(a, b);
          break;
        default:
          RADER_UNREACHABLE("pennant full adder");
      }
    }
    if (carry != nullptr) backbone_.push_back(carry);
    size_ += other.size_;
    other.backbone_.clear();
    other.size_ = 0;
  }

  /// Serial visit of every element.
  template <typename F>
  void for_each(F&& f) const {
    for (Node* pennant : backbone_) {
      if (pennant != nullptr) walk(pennant, f);
    }
  }

  /// Parallel visit: one spawn per pennant, recursive splitting within a
  /// pennant down to subtrees of ≈ grain nodes.  The pennant at backbone
  /// rank k holds exactly 2^k elements, so the split depth is known.
  template <typename F>
  void process_parallel(const F& f, std::uint32_t grain = 64) const {
    std::uint32_t grain_bits = 0;
    while ((std::uint64_t{1} << (grain_bits + 1)) <= grain) ++grain_bits;
    call([&] {
      for (std::size_t rank = 0; rank < backbone_.size(); ++rank) {
        const Node* p = backbone_[rank];
        if (p == nullptr) continue;
        const std::uint32_t budget =
            rank > grain_bits ? static_cast<std::uint32_t>(rank) - grain_bits
                              : 0;
        spawn([p, &f, budget] { process_tree(p, f, budget); });
      }
      sync();
    });
  }

  void clear() {
    for (Node* pennant : backbone_) {
      if (pennant != nullptr) free_tree(pennant);
    }
    backbone_.clear();
    size_ = 0;
  }

 private:
  struct Node {
    T value;
    Node* left;
    Node* right;
  };

  /// Combine two pennants of equal size 2^k into one of size 2^{k+1}.
  static Node* pennant_union(Node* x, Node* y) {
    shadow_write(&y->right, sizeof(Node*), SrcTag{"bag pennant-union"});
    y->right = x->left;
    shadow_write(&x->left, sizeof(Node*), SrcTag{"bag pennant-union"});
    x->left = y;
    return x;
  }

  template <typename F>
  static void walk(const Node* n, const F& f) {
    f(n->value);
    if (n->left != nullptr) walk(n->left, f);
    if (n->right != nullptr) walk(n->right, f);
  }

  template <typename F>
  static void process_tree(const Node* n, const F& f,
                           std::uint32_t depth_budget) {
    if (depth_budget == 0) {
      walk(n, f);
      return;
    }
    f(n->value);
    const Node* l = n->left;
    const Node* r = n->right;
    if (l != nullptr && r != nullptr) {
      spawn([l, &f, depth_budget] { process_tree(l, f, depth_budget - 1); });
      process_tree(r, f, depth_budget - 1);
      sync();
    } else if (l != nullptr) {
      process_tree(l, f, depth_budget - 1);
    } else if (r != nullptr) {
      process_tree(r, f, depth_budget - 1);
    }
  }

  static void free_tree(Node* n) {
    if (n->left != nullptr) free_tree(n->left);
    if (n->right != nullptr) free_tree(n->right);
    // Node fields were annotated (pennant_union); drop their shadow so a
    // reusing allocation in a later BFS layer cannot inherit it.
    shadow_clear(n, sizeof(Node));
    delete n;
  }

  std::vector<Node*> backbone_;
  std::uint64_t size_ = 0;
};

/// Monoid over Bag<T>: identity = empty bag, reduce = bag union.
template <typename T>
struct bag_monoid {
  using value_type = Bag<T>;
  static value_type identity() { return {}; }
  static void reduce(value_type& left, value_type& right) {
    left.merge(std::move(right));
  }
};

}  // namespace rader::apps
