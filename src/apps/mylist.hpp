// MyList: the user-defined singly linked list of the paper's Figure 1.
//
// "a singly linked list with a head and a tail pointer to enable fast list
// concatenation."  insert() prepends (touching only the list struct and the
// fresh node), while the monoid's Reduce concatenates in O(1) by writing the
// left list's TAIL NODE's next pointer — the write that races with a
// concurrent scan when two list objects share nodes after a shallow copy.
//
// Every next-pointer access is annotated, standing in for the compiled
// ThreadSanitizer instrumentation of the paper's prototype.
//
// Nodes are placed in the deterministic view arena (runtime/view_arena.hpp)
// rather than on the general heap: lists populated inside reducer views are
// re-created on every sweep execution, and keeping their node addresses a
// pure function of allocation order is what lets prefix-sharing sweeps
// (core/sweep.hpp) resume from checkpoints and deduplicate races on those
// nodes identically to the rerun strategy.  Nodes built during a run are
// reclaimed by the next run's arena rewind; nodes built outside any run
// (fixtures such as the Figure-1 demo's owned list) are permanent, so
// destroy() only clears shadow state and drops the pointers.
#pragma once

#include <cstdint>
#include <new>

#include "runtime/api.hpp"
#include "runtime/view_arena.hpp"

namespace rader::apps {

struct ListNode {
  int value = 0;
  ListNode* next = nullptr;
};

class MyList {
 public:
  MyList() = default;

  /// The Figure-1 bug: the copy constructor "only performs a shallow copy" —
  /// a distinct MyList object whose head/tail point at the SAME nodes.
  MyList(const MyList&) = default;
  MyList& operator=(const MyList&) = default;

  MyList(MyList&& other) noexcept : head_(other.head_), tail_(other.tail_) {
    other.head_ = nullptr;
    other.tail_ = nullptr;
  }
  MyList& operator=(MyList&& other) noexcept {
    head_ = other.head_;
    tail_ = other.tail_;
    other.head_ = nullptr;
    other.tail_ = nullptr;
    return *this;
  }

  /// O(1) prepend: touches only this list object and the new node.
  void insert(int value) {
    auto* node = new (view_arena::allocate(sizeof(ListNode),
                                           alignof(ListNode)))
        ListNode{value, nullptr};
    shadow_write(&node->next, sizeof(ListNode*), SrcTag{"MyList insert"});
    node->next = head_;
    shadow_write(&head_, sizeof(ListNode*), SrcTag{"MyList insert head"});
    head_ = node;
    if (tail_ == nullptr) tail_ = node;
  }

  /// O(1) concatenation: appends `rhs`'s nodes by WRITING this list's tail
  /// node's next pointer — the Reduce-side write of Figure 1's race.
  void concat(MyList& rhs) {
    if (rhs.head_ == nullptr) return;
    if (head_ == nullptr) {
      shadow_write(&head_, sizeof(ListNode*),
                   SrcTag{"MyList concat (Reduce, adopt)"});
      head_ = rhs.head_;
      tail_ = rhs.tail_;
    } else {
      shadow_write(&tail_->next, sizeof(ListNode*),
                   SrcTag{"MyList concat (Reduce)"});
      tail_->next = rhs.head_;
      tail_ = rhs.tail_;
    }
    rhs.head_ = nullptr;
    rhs.tail_ = nullptr;
  }

  /// Walk the list reading each next pointer (Figure 1's scan_list).
  int scan(SrcTag tag = SrcTag{"scan_list"}) const {
    int length = 0;
    for (const ListNode* node = head_; node != nullptr;) {
      shadow_read(&node->next, sizeof(ListNode*), tag);
      node = node->next;
      ++length;
    }
    return length;
  }

  /// Drop the chain.  Only call on the owning list (not shallow copies).
  /// Node storage belongs to the view arena (see the file comment), so this
  /// clears shadow state and forgets the pointers; it frees nothing.
  void destroy() {
    for (ListNode* node = head_; node != nullptr;) {
      ListNode* next = node->next;
      shadow_clear(node, sizeof(ListNode));
      node = next;
    }
    head_ = nullptr;
    tail_ = nullptr;
  }

  bool empty() const { return head_ == nullptr; }
  const ListNode* head() const { return head_; }

 private:
  ListNode* head_ = nullptr;
  ListNode* tail_ = nullptr;
};

/// The list_monoid of Figure 1: identity = empty list, reduce = concat.
struct list_monoid {
  using value_type = MyList;
  static MyList identity() { return {}; }
  static void reduce(MyList& left, MyList& right) { left.concat(right); }
};

}  // namespace rader::apps
