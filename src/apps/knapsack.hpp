// knapsack benchmark: parallel branch-and-bound 0/1 knapsack.
//
// Port of Frigo's Cilk++ knapsack-challenge program, which the paper
// benchmarks: the search tree is explored with spawns, and the best solution
// found is maintained in a reducer over a USER-DEFINED STRUCT (value + the
// number of optimal solutions seen), combined with a max-style monoid.
// Pruning reads the *view-local* bound, so the amount of work is
// schedule-dependent but the result is deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace rader::apps {

struct KnapsackItem {
  long value = 0;
  long weight = 0;
};

/// The user-defined reducer view: best value found plus solution count.
struct BestSolution {
  long value = -1;
  long count = 0;  // number of distinct leaves achieving `value`
};

/// Monoid over BestSolution: keep the max value, summing counts on ties.
struct best_solution_monoid {
  using value_type = BestSolution;
  static BestSolution identity() { return {}; }
  static void reduce(BestSolution& left, BestSolution& right) {
    if (right.value > left.value) {
      left = right;
    } else if (right.value == left.value) {
      left.count += right.count;
    }
  }
};

/// Generate a reproducible instance with weights/values in [1, 100].
std::vector<KnapsackItem> knapsack_instance(int n, std::uint64_t seed);

/// Parallel branch-and-bound: best achievable value for `capacity`.
BestSolution knapsack_parallel(const std::vector<KnapsackItem>& items,
                               long capacity, int serial_cutoff = 6);

/// Reference: dynamic-programming optimum (value only).
long knapsack_dp(const std::vector<KnapsackItem>& items, long capacity);

}  // namespace rader::apps
