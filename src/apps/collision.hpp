// collision benchmark: collision detection in 3-D with a "hypervector"
// (vector-append) reducer, one of the paper's six benchmarks.
//
// Spheres are binned into a uniform grid (broad phase); a parallel sweep
// over spheres tests each against the occupants of its 3×3×3 cell
// neighborhood (narrow phase: exact sphere-sphere distance).  Colliding
// pairs are appended to a hypervector reducer, so the output order is the
// deterministic serial order regardless of schedule.
#pragma once

#include <cstdint>
#include <vector>

namespace rader::apps {

struct Sphere {
  float x = 0, y = 0, z = 0;
  float r = 0;
};

struct CollisionScene {
  std::vector<Sphere> spheres;
  float world = 1.0f;      // coordinates in [0, world)
  float cell = 0.1f;       // grid cell edge (≥ 2·max radius)
};

/// Reproducible scene of n spheres, radius chosen so ~a few percent collide.
CollisionScene make_scene(std::uint32_t n, std::uint64_t seed);

/// Parallel broad+narrow phase; pairs (i < j) in deterministic order.
std::vector<std::pair<std::uint32_t, std::uint32_t>> find_collisions(
    const CollisionScene& scene, std::uint32_t grain = 32);

/// Reference O(n²) narrow phase.
std::vector<std::pair<std::uint32_t, std::uint32_t>> find_collisions_brute(
    const CollisionScene& scene);

}  // namespace rader::apps
