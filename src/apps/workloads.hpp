// Uniform workload wrappers for the benchmark harness.
//
// Each of the paper's six benchmarks is packaged as a re-runnable callable
// (safe to execute many times, under any engine) plus a verifier against an
// independent reference — the harness in bench/ times them under each
// detector configuration to regenerate Figures 7 and 8.
//
// `scale` trades fidelity for wall-clock: 1.0 approximates the paper's
// input sizes (fib 28, knapsack 26, pbfs |V|=0.3M / |E|=1.9M, ...); smaller
// values shrink inputs proportionally so the full table fits in CI.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace rader::apps {

struct Workload {
  std::string name;
  std::string input_desc;
  std::string description;
  std::function<void()> run;     // the timed computation (engine-agnostic)
  std::function<bool()> verify;  // check the last run's output
};

/// The paper's six benchmarks (Figure 7 order).
std::vector<Workload> make_paper_benchmarks(double scale);

/// A single benchmark by name ("collision", "dedup", "ferret", "fib",
/// "knapsack", "pbfs"); aborts on unknown names.
Workload make_benchmark(const std::string& name, double scale);

/// The benchmark names make_benchmark accepts, in Figure-7 order.
const std::vector<std::string>& benchmark_names();

}  // namespace rader::apps
