// Compressed-sparse-row graphs and reproducible generators for the pbfs
// benchmark (|V| = 0.3M, |E| = 1.9M in the paper's configuration).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rader::apps {

class Graph {
 public:
  Graph() = default;

  /// Build from an edge list (deduplicated, both directions added).
  static Graph from_edges(std::uint32_t n,
                          std::vector<std::pair<std::uint32_t, std::uint32_t>>
                              edges);

  /// Uniformly random (Erdős–Rényi-style) undirected graph with ~m edges.
  static Graph random(std::uint32_t n, std::uint64_t m, std::uint64_t seed);

  /// RMAT-style power-law graph (a=0.45, b=c=0.22, d=0.11) with ~m edges.
  static Graph rmat(std::uint32_t n, std::uint64_t m, std::uint64_t seed);

  /// w×h 2-D grid (diameter stress for BFS).
  static Graph grid2d(std::uint32_t w, std::uint32_t h);

  std::uint32_t num_vertices() const {
    return static_cast<std::uint32_t>(offsets_.size()) - 1;
  }
  std::uint64_t num_edges() const { return targets_.size(); }  // directed

  std::span<const std::uint32_t> neighbors(std::uint32_t v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  std::uint32_t degree(std::uint32_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  std::vector<std::uint32_t> offsets_;  // size n+1
  std::vector<std::uint32_t> targets_;  // size 2m (both directions)
};

}  // namespace rader::apps
