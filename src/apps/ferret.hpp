// ferret benchmark: content-based similarity search, after the PARSEC
// `ferret` pipeline the paper ports to Cilk.
//
// The real ferret searches an image database with extracted feature vectors;
// lacking image data, we synthesize a clustered database of 64-dimensional
// feature histograms (the substitution preserves the code path: a parallel
// scan ranking candidates by distance, with results merged by a user-defined
// top-k reducer and emitted in order through an ostream reducer).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace rader::apps {

inline constexpr std::size_t kFeatureDim = 64;
using Feature = std::array<float, kFeatureDim>;

struct FerretDatabase {
  std::vector<Feature> images;   // the "database"
  std::vector<Feature> queries;  // probe images (near-cluster samples)
};

struct Hit {
  float dist = 0;
  std::uint32_t id = 0;
  friend bool operator<(const Hit& a, const Hit& b) {
    return a.dist < b.dist || (a.dist == b.dist && a.id < b.id);
  }
  friend bool operator==(const Hit& a, const Hit& b) {
    return a.dist == b.dist && a.id == b.id;
  }
};

/// Top-k view: the k best (smallest-distance) hits, sorted.  k == 0 marks
/// an identity view that has not yet learned its bound (identity() cannot
/// know k); it collects unbounded and is trimmed at the first merge.
struct TopK {
  std::uint32_t k = 0;
  std::vector<Hit> hits;  // sorted ascending, size <= k (when k != 0)

  void offer(const Hit& h);
  void merge(TopK& other);
};

/// User-defined monoid: merge two top-k lists keeping the k best.
struct topk_monoid {
  using value_type = TopK;
  static TopK identity() { return {}; }
  static void reduce(TopK& left, TopK& right);
};

/// Reproducible clustered database (`n` images, `q` queries).
FerretDatabase make_ferret_db(std::uint32_t n, std::uint32_t q,
                              std::uint64_t seed);

/// Parallel search: for each query, scan the database in parallel with a
/// top-k reducer; append "query <i>: id,id,..." lines to `report` (in
/// deterministic order via an ostream reducer).  Returns all ranked ids.
std::vector<std::vector<std::uint32_t>> ferret_search(
    const FerretDatabase& db, std::uint32_t k, std::string& report);

/// Reference: serial scan per query.
std::vector<std::vector<std::uint32_t>> ferret_search_serial(
    const FerretDatabase& db, std::uint32_t k);

}  // namespace rader::apps
