#include "apps/ferret.hpp"

#include <algorithm>
#include <sstream>

#include "reducers/ostream_monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "support/rng.hpp"

namespace rader::apps {

void TopK::offer(const Hit& h) {
  // k == 0 marks an identity view that has not yet learned its bound (the
  // monoid's identity() cannot know k): collect unbounded, trim at merge.
  if (k != 0 && hits.size() >= k && !(h < hits.back())) return;
  auto pos = std::lower_bound(hits.begin(), hits.end(), h);
  hits.insert(pos, h);
  if (k != 0 && hits.size() > k) hits.pop_back();
}

void TopK::merge(TopK& other) {
  if (k == 0) k = other.k;  // identity views learn k from real views
  std::vector<Hit> merged;
  merged.reserve(hits.size() + other.hits.size());
  std::merge(hits.begin(), hits.end(), other.hits.begin(), other.hits.end(),
             std::back_inserter(merged));
  // k may STILL be 0 here (two unlearned identity views merging): stay
  // unbounded — trimming would discard candidates before the bound is known.
  if (k != 0 && merged.size() > k) merged.resize(k);
  hits = std::move(merged);
}

void topk_monoid::reduce(TopK& left, TopK& right) {
  if (left.k == 0) left.k = right.k;
  left.merge(right);
}

namespace {

float l2_sq(const Feature& a, const Feature& b) {
  float s = 0;
  for (std::size_t d = 0; d < kFeatureDim; ++d) {
    const float diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

Feature jitter(const Feature& base, Rng& rng, float amount) {
  Feature f = base;
  for (auto& v : f) {
    v += amount * static_cast<float>(rng.uniform() - 0.5);
  }
  return f;
}

}  // namespace

FerretDatabase make_ferret_db(std::uint32_t n, std::uint32_t q,
                              std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t clusters = std::max<std::uint32_t>(4, n / 64);
  std::vector<Feature> centers(clusters);
  for (auto& c : centers) {
    for (auto& v : c) v = static_cast<float>(rng.uniform());
  }
  FerretDatabase db;
  db.images.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    db.images.push_back(jitter(centers[rng.below(clusters)], rng, 0.15f));
  }
  db.queries.reserve(q);
  for (std::uint32_t i = 0; i < q; ++i) {
    db.queries.push_back(jitter(centers[rng.below(clusters)], rng, 0.10f));
  }
  return db;
}

std::vector<std::vector<std::uint32_t>> ferret_search(
    const FerretDatabase& db, std::uint32_t k, std::string& report) {
  std::vector<std::vector<std::uint32_t>> results(db.queries.size());
  std::ostringstream sink;
  {
    ostream_reducer out(sink, SrcTag{"ferret report stream"});
    // Outer parallelism across queries...
    parallel_for<std::uint32_t>(
        0, static_cast<std::uint32_t>(db.queries.size()),
        [&](std::uint32_t qi) {
          const Feature& query = db.queries[qi];
          // ...inner parallelism across the database scan, merged by the
          // user-defined top-k reducer.
          reducer<topk_monoid> best(TopK{k, {}}, SrcTag{"ferret top-k"});
          parallel_for<std::uint32_t>(
              0, static_cast<std::uint32_t>(db.images.size()),
              [&](std::uint32_t img) {
                const float d = l2_sq(query, db.images[img]);
                best.update(
                    [&](TopK& view) {
                      shadow_write(&view, sizeof(std::uint32_t),
                                   SrcTag{"ferret topk offer"});
                      view.offer(Hit{d, img});
                    },
                    SrcTag{"ferret topk offer"});
              },
              /*grain=*/64);
          // No explicit sync: parallel_for joins its own frame.  A sync
          // HERE would sync the enclosing chunk frame — with outer-loop
          // children outstanding, the reducer reads below would then have
          // different peer sets (a view-read race Peer-Set rightly flags).
          const TopK top = best.get_value(SrcTag{"ferret query result"});
          std::string line = "query " + std::to_string(qi) + ":";
          results[qi].reserve(top.hits.size());
          for (const Hit& h : top.hits) {
            results[qi].push_back(h.id);
            line += " " + std::to_string(h.id);
          }
          line += "\n";
          out.write(line);
        },
        /*grain=*/1);
    sync();
    out.flush(SrcTag{"ferret final flush"});
  }
  report = sink.str();
  return results;
}

std::vector<std::vector<std::uint32_t>> ferret_search_serial(
    const FerretDatabase& db, std::uint32_t k) {
  std::vector<std::vector<std::uint32_t>> results(db.queries.size());
  for (std::size_t qi = 0; qi < db.queries.size(); ++qi) {
    TopK top{k, {}};
    for (std::uint32_t img = 0; img < db.images.size(); ++img) {
      top.offer(Hit{l2_sq(db.queries[qi], db.images[img]), img});
    }
    for (const Hit& h : top.hits) results[qi].push_back(h.id);
  }
  return results;
}

}  // namespace rader::apps
