#include "apps/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "apps/collision.hpp"
#include "apps/dedup.hpp"
#include "apps/ferret.hpp"
#include "apps/fib.hpp"
#include "apps/knapsack.hpp"
#include "apps/pbfs.hpp"
#include "support/common.hpp"

namespace rader::apps {
namespace {

Workload make_collision(double scale) {
  auto scene = std::make_shared<CollisionScene>(
      make_scene(static_cast<std::uint32_t>(20000 * scale), 0xc011));
  auto out = std::make_shared<
      std::vector<std::pair<std::uint32_t, std::uint32_t>>>();
  Workload w;
  w.name = "collision";
  w.input_desc = std::to_string(scene->spheres.size()) + " spheres";
  w.description = "Collision detection in 3D";
  w.run = [scene, out] { *out = find_collisions(*scene); };
  w.verify = [scene, out] { return *out == find_collisions_brute(*scene); };
  return w;
}

Workload make_dedup(double scale) {
  auto input = std::make_shared<std::string>(make_dedup_input(
      static_cast<std::size_t>(4.0e6 * scale), 0.5, 0xded0));
  auto archive = std::make_shared<std::string>();
  Workload w;
  w.name = "dedup";
  w.input_desc = std::to_string(input->size() / 1024) + " KiB";
  w.description = "Compression program";
  w.run = [input, archive] { dedup_compress(*input, *archive); };
  w.verify = [input, archive] { return dedup_restore(*archive) == *input; };
  return w;
}

Workload make_ferret(double scale) {
  auto db = std::make_shared<FerretDatabase>(
      make_ferret_db(static_cast<std::uint32_t>(8000 * scale),
                     static_cast<std::uint32_t>(std::max(4.0, 64 * scale)),
                     0xfe44e7));
  auto results =
      std::make_shared<std::vector<std::vector<std::uint32_t>>>();
  Workload w;
  w.name = "ferret";
  w.input_desc = std::to_string(db->images.size()) + " imgs / " +
                 std::to_string(db->queries.size()) + " queries";
  w.description = "Image similarity search";
  w.run = [db, results] {
    std::string report;
    *results = ferret_search(*db, 10, report);
  };
  w.verify = [db, results] {
    return *results == ferret_search_serial(*db, 10);
  };
  return w;
}

Workload make_fib(double scale) {
  // fib's cost is exponential in n: scale shifts n logarithmically.
  const int n = std::max(
      10, 28 + static_cast<int>(std::llround(std::log2(std::max(scale, 1e-6)))));
  auto result = std::make_shared<FibResult>();
  Workload w;
  w.name = "fib";
  w.input_desc = std::to_string(n);
  w.description = "Recursive Fibonacci";
  w.run = [n, result] { *result = run_fib(n); };
  w.verify = [n, result] {
    return result->value == fib_serial(n) &&
           static_cast<std::uint64_t>(result->calls) == fib_call_count(n);
  };
  return w;
}

Workload make_knapsack(double scale) {
  const int n = std::max(
      8, 26 + static_cast<int>(std::llround(std::log2(std::max(scale, 1e-6)))));
  auto items =
      std::make_shared<std::vector<KnapsackItem>>(knapsack_instance(n, 0x4a9));
  long weight_total = 0;
  for (const auto& item : *items) weight_total += item.weight;
  const long capacity = weight_total / 3;
  auto result = std::make_shared<BestSolution>();
  Workload w;
  w.name = "knapsack";
  w.input_desc = std::to_string(n);
  w.description = "Recursive knapsack";
  w.run = [items, capacity, result] {
    *result = knapsack_parallel(*items, capacity);
  };
  w.verify = [items, capacity, result] {
    return result->value == knapsack_dp(*items, capacity);
  };
  return w;
}

Workload make_pbfs(double scale) {
  const auto v = static_cast<std::uint32_t>(300000 * scale);
  const auto e = static_cast<std::uint64_t>(1900000 * scale);
  auto graph = std::make_shared<Graph>(
      Graph::rmat(std::max<std::uint32_t>(v, 64), e, 0x9bf5));
  auto dist = std::make_shared<std::vector<std::uint32_t>>();
  Workload w;
  w.name = "pbfs";
  w.input_desc = "|V|=" + std::to_string(graph->num_vertices()) +
                 ", |E|=" + std::to_string(graph->num_edges() / 2);
  w.description = "Parallel breadth-first search";
  w.run = [graph, dist] { *dist = pbfs(*graph, 0); };
  w.verify = [graph, dist] { return *dist == serial_bfs(*graph, 0); };
  return w;
}

}  // namespace

std::vector<Workload> make_paper_benchmarks(double scale) {
  std::vector<Workload> all;
  all.push_back(make_collision(scale));
  all.push_back(make_dedup(scale));
  all.push_back(make_ferret(scale));
  all.push_back(make_fib(scale));
  all.push_back(make_knapsack(scale));
  all.push_back(make_pbfs(scale));
  return all;
}

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> kNames = {
      "collision", "dedup", "ferret", "fib", "knapsack", "pbfs"};
  return kNames;
}

Workload make_benchmark(const std::string& name, double scale) {
  if (name == "collision") return make_collision(scale);
  if (name == "dedup") return make_dedup(scale);
  if (name == "ferret") return make_ferret(scale);
  if (name == "fib") return make_fib(scale);
  if (name == "knapsack") return make_knapsack(scale);
  if (name == "pbfs") return make_pbfs(scale);
  RADER_UNREACHABLE("unknown benchmark name");
}

}  // namespace rader::apps
