#include "apps/bag.hpp"

namespace rader::apps {

// Pin the common instantiation so Bag compiles as part of the library.
template class Bag<std::uint32_t>;

}  // namespace rader::apps
