// fib benchmark: the paper's synthetic stress test.
//
// "The synthetic fib benchmark uses a reducer_opadd ... each function call
// does almost no work except for updating reducers and reducing views.  The
// overhead is thus evident — there is not much work to amortize it against."
#pragma once

#include <cstdint>

#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"

namespace rader::apps {

/// Recursive spawn-based Fibonacci that bumps `calls` once per invocation.
std::uint64_t fib_reducer(int n, reducer<monoid::op_add<long>>& calls,
                          int serial_cutoff = 2);

struct FibResult {
  std::uint64_t value = 0;
  long calls = 0;
};

/// Run fib(n) with a fresh call-count reducer under the current engine.
FibResult run_fib(int n, int serial_cutoff = 2);

/// Reference: plain serial Fibonacci value.
std::uint64_t fib_serial(int n);

/// Reference: number of calls fib_reducer makes for n (with cutoff 2).
std::uint64_t fib_call_count(int n);

}  // namespace rader::apps
