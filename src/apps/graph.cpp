#include "apps/graph.hpp"

#include <algorithm>

#include "support/common.hpp"
#include "support/rng.hpp"

namespace rader::apps {

Graph Graph::from_edges(
    std::uint32_t n,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  // Normalize: undirected, no self-loops, no duplicates.
  for (auto& [a, b] : edges) {
    if (a > b) std::swap(a, b);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const auto& e) { return e.first == e.second; }),
              edges.end());

  Graph g;
  g.offsets_.assign(n + 1, 0);
  for (const auto& [a, b] : edges) {
    RADER_CHECK(a < n && b < n);
    ++g.offsets_[a + 1];
    ++g.offsets_[b + 1];
  }
  for (std::uint32_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.targets_.resize(g.offsets_[n]);
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    g.targets_[cursor[a]++] = b;
    g.targets_[cursor[b]++] = a;
  }
  return g;
}

Graph Graph::random(std::uint32_t n, std::uint64_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    const auto b = static_cast<std::uint32_t>(rng.below(n));
    edges.emplace_back(a, b);
  }
  return from_edges(n, std::move(edges));
}

Graph Graph::rmat(std::uint32_t n, std::uint64_t m, std::uint64_t seed) {
  // Round n up to a power of two for the quadrant recursion.
  std::uint32_t bits = 0;
  while ((std::uint32_t{1} << bits) < n) ++bits;
  Rng rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint32_t a = 0, b = 0;
    for (std::uint32_t bit = 0; bit < bits; ++bit) {
      const double x = rng.uniform();
      // Quadrant probabilities (0.45, 0.22, 0.22, 0.11) with slight noise.
      if (x < 0.45) {
        // top-left: neither bit set
      } else if (x < 0.67) {
        b |= (1u << bit);
      } else if (x < 0.89) {
        a |= (1u << bit);
      } else {
        a |= (1u << bit);
        b |= (1u << bit);
      }
    }
    if (a < n && b < n) edges.emplace_back(a, b);
  }
  return from_edges(n, std::move(edges));
}

Graph Graph::grid2d(std::uint32_t w, std::uint32_t h) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(static_cast<std::size_t>(w) * h * 2);
  const auto id = [w](std::uint32_t x, std::uint32_t y) { return y * w + x; };
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      if (x + 1 < w) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < h) edges.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  return from_edges(w * h, std::move(edges));
}

}  // namespace rader::apps
