#include "apps/collision.hpp"

#include <algorithm>
#include <cmath>

#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"

namespace rader::apps {
namespace {

struct UniformGrid {
  std::uint32_t dim = 1;
  float inv_cell = 1.0f;
  // CSR layout: sphere indices grouped by cell.
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> members;

  std::uint32_t clamp_coord(float v) const {
    const auto c = static_cast<std::int64_t>(v * inv_cell);
    return static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(c, 0, dim - 1));
  }
  std::uint32_t cell_of(const Sphere& s) const {
    return (clamp_coord(s.x) * dim + clamp_coord(s.y)) * dim +
           clamp_coord(s.z);
  }
};

UniformGrid build_grid(const CollisionScene& scene) {
  UniformGrid grid;
  grid.dim = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(scene.world / scene.cell));
  grid.inv_cell = static_cast<float>(grid.dim) / scene.world;
  const std::size_t cells =
      static_cast<std::size_t>(grid.dim) * grid.dim * grid.dim;
  grid.offsets.assign(cells + 1, 0);
  for (const Sphere& s : scene.spheres) ++grid.offsets[grid.cell_of(s) + 1];
  for (std::size_t c = 0; c < cells; ++c) grid.offsets[c + 1] += grid.offsets[c];
  grid.members.resize(scene.spheres.size());
  std::vector<std::uint32_t> cursor(grid.offsets.begin(),
                                    grid.offsets.end() - 1);
  for (std::uint32_t i = 0; i < scene.spheres.size(); ++i) {
    grid.members[cursor[grid.cell_of(scene.spheres[i])]++] = i;
  }
  return grid;
}

bool overlaps(const Sphere& a, const Sphere& b) {
  const float dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  const float rr = a.r + b.r;
  return dx * dx + dy * dy + dz * dz < rr * rr;
}

}  // namespace

CollisionScene make_scene(std::uint32_t n, std::uint64_t seed) {
  CollisionScene scene;
  Rng rng(seed);
  scene.world = 1.0f;
  // Density tuned so a few percent of spheres touch a neighbor.
  const float radius =
      0.35f / std::cbrt(static_cast<float>(std::max<std::uint32_t>(n, 1)));
  scene.cell = std::max(0.02f, 2.5f * radius);
  scene.spheres.resize(n);
  for (auto& s : scene.spheres) {
    s.x = static_cast<float>(rng.uniform());
    s.y = static_cast<float>(rng.uniform());
    s.z = static_cast<float>(rng.uniform());
    s.r = radius * (0.5f + 0.5f * static_cast<float>(rng.uniform()));
  }
  return scene;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> find_collisions(
    const CollisionScene& scene, std::uint32_t grain) {
  const UniformGrid grid = build_grid(scene);
  using Pair = std::pair<std::uint32_t, std::uint32_t>;
  reducer<monoid::vector_append<Pair>> hits(SrcTag{"collision hypervector"});

  const auto n = static_cast<std::uint32_t>(scene.spheres.size());
  parallel_for<std::uint32_t>(
      0, n,
      [&](std::uint32_t i) {
        const Sphere& a = scene.spheres[i];
        const std::uint32_t cx = grid.clamp_coord(a.x);
        const std::uint32_t cy = grid.clamp_coord(a.y);
        const std::uint32_t cz = grid.clamp_coord(a.z);
        for (std::uint32_t x = (cx > 0 ? cx - 1 : 0);
             x <= std::min(cx + 1, grid.dim - 1); ++x) {
          for (std::uint32_t y = (cy > 0 ? cy - 1 : 0);
               y <= std::min(cy + 1, grid.dim - 1); ++y) {
            for (std::uint32_t z = (cz > 0 ? cz - 1 : 0);
                 z <= std::min(cz + 1, grid.dim - 1); ++z) {
              const std::uint32_t cell = (x * grid.dim + y) * grid.dim + z;
              for (std::uint32_t k = grid.offsets[cell];
                   k < grid.offsets[cell + 1]; ++k) {
                const std::uint32_t j = grid.members[k];
                // Report each pair once, owned by the lower index.
                if (j <= i) continue;
                if (overlaps(a, scene.spheres[j])) {
                  hits.update(
                      [&](std::vector<Pair>& v) {
                        shadow_write(&v, sizeof(std::size_t),
                                     SrcTag{"collision append"});
                        v.emplace_back(i, j);
                      },
                      SrcTag{"collision append"});
                }
              }
            }
          }
        }
      },
      grain);
  sync();
  auto result = hits.take_value(SrcTag{"collision result"});
  // Iteration order within a sphere's neighborhood is deterministic, but
  // normalize for comparisons with the brute-force reference.
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> find_collisions_brute(
    const CollisionScene& scene) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> result;
  const auto n = static_cast<std::uint32_t>(scene.spheres.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (overlaps(scene.spheres[i], scene.spheres[j])) {
        result.emplace_back(i, j);
      }
    }
  }
  return result;
}

}  // namespace rader::apps
