// pbfs benchmark: work-efficient parallel breadth-first search with a Bag
// reducer, after Leiserson & Schardl [27] — one of the paper's six
// benchmarks (|V| = 0.3M, |E| = 1.9M).
//
// Each BFS layer is processed in parallel from a Bag; newly discovered
// vertices are inserted into a Bag REDUCER, so concurrent discoverers each
// fill a local view and the views are united (pennant unions — genuine user
// Reduce code) by the runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/graph.hpp"

namespace rader::apps {

inline constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);

/// Parallel BFS distances from `source` (kUnreached where unreachable).
std::vector<std::uint32_t> pbfs(const Graph& g, std::uint32_t source,
                                std::uint32_t grain = 128);

/// Reference serial BFS.
std::vector<std::uint32_t> serial_bfs(const Graph& g, std::uint32_t source);

}  // namespace rader::apps
