#include "apps/knapsack.hpp"

#include <algorithm>

#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace rader::apps {
namespace {

using BestReducer = reducer<best_solution_monoid>;

struct Instance {
  const std::vector<KnapsackItem>* items;
  std::vector<long> value_suffix;  // value_suffix[i] = Σ value[i..n)
};

// Explore items[i..): take-or-skip with fractional-free optimistic bound.
void explore(const Instance& inst, int i, long cap, long value,
             BestReducer& best, int serial_cutoff) {
  const auto& items = *inst.items;
  const int n = static_cast<int>(items.size());
  if (cap < 0) return;  // infeasible branch (overcommitted)
  if (i == n) {
    best.update(
        [&](BestSolution& b) {
          shadow_write(&b, sizeof(BestSolution), SrcTag{"knapsack best"});
          if (value > b.value) {
            b.value = value;
            b.count = 1;
          } else if (value == b.value) {
            b.count += 1;
          }
        },
        SrcTag{"knapsack best"});
    return;
  }
  // Prune against the view-local lower bound.  The prune is strict, so a
  // skipped subtree can contain neither a better leaf nor an optimal tie:
  // the final (value, count) pair is deterministic even though the amount
  // of work is schedule-dependent.
  if (value + inst.value_suffix[i] < best.view().value) return;

  if (n - i <= serial_cutoff) {
    explore(inst, i + 1, cap - items[i].weight, value + items[i].value, best,
            serial_cutoff);
    explore(inst, i + 1, cap, value, best, serial_cutoff);
    return;
  }
  const long take_cap = cap - items[i].weight;
  const long take_value = value + items[i].value;
  spawn([&inst, i, take_cap, take_value, &best, serial_cutoff] {
    explore(inst, i + 1, take_cap, take_value, best, serial_cutoff);
  });
  explore(inst, i + 1, cap, value, best, serial_cutoff);
  sync();
}

}  // namespace

std::vector<KnapsackItem> knapsack_instance(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KnapsackItem> items(n);
  for (auto& item : items) {
    item.value = rng.range(1, 100);
    item.weight = rng.range(1, 100);
  }
  // Branch and bound works best with items in decreasing density order.
  std::sort(items.begin(), items.end(),
            [](const KnapsackItem& a, const KnapsackItem& b) {
              return a.value * b.weight > b.value * a.weight;
            });
  return items;
}

BestSolution knapsack_parallel(const std::vector<KnapsackItem>& items,
                               long capacity, int serial_cutoff) {
  Instance inst;
  inst.items = &items;
  inst.value_suffix.assign(items.size() + 1, 0);
  for (std::size_t i = items.size(); i-- > 0;) {
    inst.value_suffix[i] = inst.value_suffix[i + 1] + items[i].value;
  }
  BestReducer best(SrcTag{"knapsack best reducer"});
  explore(inst, 0, capacity, 0, best, serial_cutoff);
  sync();
  return best.get_value(SrcTag{"knapsack result"});
}

long knapsack_dp(const std::vector<KnapsackItem>& items, long capacity) {
  std::vector<long> dp(capacity + 1, 0);
  for (const auto& item : items) {
    for (long c = capacity; c >= item.weight; --c) {
      dp[c] = std::max(dp[c], dp[c - item.weight] + item.value);
    }
  }
  return dp[capacity];
}

}  // namespace rader::apps
