#include "apps/fib.hpp"

#include "runtime/api.hpp"

namespace rader::apps {

std::uint64_t fib_reducer(int n, reducer<monoid::op_add<long>>& calls,
                          int serial_cutoff) {
  calls += 1;
  if (n < 2) return static_cast<std::uint64_t>(n);
  if (n <= serial_cutoff) {
    // Below the cutoff there is no parallelism, but still one reducer
    // update per call (stressing the Update path, as in the paper).
    return fib_reducer(n - 1, calls, serial_cutoff) +
           fib_reducer(n - 2, calls, serial_cutoff);
  }
  std::uint64_t x = 0;
  spawn([&] { x = fib_reducer(n - 1, calls, serial_cutoff); });
  const std::uint64_t y = fib_reducer(n - 2, calls, serial_cutoff);
  sync();
  return x + y;
}

FibResult run_fib(int n, int serial_cutoff) {
  reducer<monoid::op_add<long>> calls(SrcTag{"fib call counter"});
  FibResult result;
  result.value = fib_reducer(n, calls, serial_cutoff);
  sync();
  result.calls = calls.get_value(SrcTag{"fib final count"});
  return result;
}

std::uint64_t fib_serial(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 1;
  for (int i = 2; i <= n; ++i) {
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  return b;
}

std::uint64_t fib_call_count(int n) {
  // calls(n) = 1 + calls(n-1) + calls(n-2) for n >= 2; calls(<2) = 1.
  if (n < 2) return 1;
  std::uint64_t a = 1, b = 1;  // calls(0), calls(1)
  for (int i = 2; i <= n; ++i) {
    const std::uint64_t c = 1 + a + b;
    a = b;
    b = c;
  }
  return b;
}

}  // namespace rader::apps
