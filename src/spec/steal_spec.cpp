#include "spec/steal_spec.hpp"

#include <algorithm>
#include <cstdio>

#include "support/common.hpp"
#include "support/hash.hpp"

namespace rader::spec {
namespace {

/// Deterministic per-point hash: the only randomness source for randomized
/// specs, so that a (seed, program) pair always replays the same schedule.
std::uint64_t point_hash(std::uint64_t seed, FrameId frame,
                         std::uint32_t sync_block, std::uint64_t salt) {
  std::uint64_t h = mix64(seed ^ 0x5851f42d4c957f2dull);
  h = hash_combine(h, mix64(frame));
  h = hash_combine(h, mix64(sync_block));
  h = hash_combine(h, mix64(salt));
  return mix64(h);
}

}  // namespace

TripleSteal::TripleSteal(std::uint32_t a, std::uint32_t b, std::uint32_t c)
    : a_(a), b_(b), c_(c) {
  // Normalize to a <= b <= c; the construction only needs the sorted order.
  std::uint32_t v[3] = {a_, b_, c_};
  std::sort(v, v + 3);
  a_ = v[0];
  b_ = v[1];
  c_ = v[2];
}

bool TripleSteal::steal(const PointCtx& ctx) const {
  return ctx.cont_index == a_ || ctx.cont_index == b_ || ctx.cont_index == c_;
}

std::uint32_t TripleSteal::merges_now(const PointCtx& ctx) const {
  // After steals at a and b, the two newest epochs hold the update
  // subsequences [a,b) and [b,·).  Merging them at the pre-steal point of
  // continuation c elicits the reduce strand ⟨k_a..k_{b-1}⟩ ⊗ ⟨k_b..k_{c-1}⟩.
  if (ctx.cont_index == c_ && c_ > b_ && b_ > a_ && ctx.live_epochs >= 2) {
    return 1;
  }
  return 0;
}

std::string TripleSteal::describe() const {
  return "steal-triple(" + std::to_string(a_) + "," + std::to_string(b_) +
         "," + std::to_string(c_) + ")";
}

std::string DepthSteal::describe() const {
  return "steal-depth(" + std::to_string(depth_) + ")";
}

RandomTripleSteal::RandomTripleSteal(std::uint64_t seed,
                                     std::uint32_t max_sync_block)
    : seed_(seed), max_k_(std::max<std::uint32_t>(1, max_sync_block)) {}

RandomTripleSteal::Triple RandomTripleSteal::triple_for(
    const PointCtx& ctx) const {
  std::uint32_t v[3];
  for (std::uint32_t i = 0; i < 3; ++i) {
    v[i] = static_cast<std::uint32_t>(
        point_hash(seed_, ctx.frame, ctx.sync_block, i) % max_k_);
  }
  std::sort(v, v + 3);
  return Triple{v[0], v[1], v[2]};
}

bool RandomTripleSteal::steal(const PointCtx& ctx) const {
  const Triple t = triple_for(ctx);
  return ctx.cont_index == t.a || ctx.cont_index == t.b ||
         ctx.cont_index == t.c;
}

std::uint32_t RandomTripleSteal::merges_now(const PointCtx& ctx) const {
  const Triple t = triple_for(ctx);
  if (ctx.cont_index == t.c && t.c > t.b && t.b > t.a &&
      ctx.live_epochs >= 2) {
    return 1;
  }
  return 0;
}

std::string RandomTripleSteal::describe() const {
  return "steal-random(seed=" + std::to_string(seed_) +
         ",K=" + std::to_string(max_k_) + ")";
}

bool BernoulliSteal::steal(const PointCtx& ctx) const {
  const std::uint64_t h =
      point_hash(seed_, ctx.frame, ctx.sync_block, 0x100000000ull + ctx.cont_index);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p_;
}

std::uint32_t BernoulliSteal::merges_now(const PointCtx& ctx) const {
  if (ctx.live_epochs == 0) return 0;
  const std::uint64_t h =
      point_hash(seed_ ^ 0xabcdefull, ctx.frame, ctx.sync_block,
                 0x200000000ull + ctx.cont_index);
  // A random number of eager top-merges in [0, live_epochs]: explores many
  // reduce-tree shapes across seeds.
  return static_cast<std::uint32_t>(h % (ctx.live_epochs + 1));
}

std::string BernoulliSteal::describe() const {
  return "steal-bernoulli(seed=" + std::to_string(seed_) +
         ",p=" + std::to_string(p_) + ")";
}

std::unique_ptr<StealSpec> from_description(const std::string& text) {
  if (text == "no-steals") return std::make_unique<NoSteal>();
  if (text == "steal-all") return std::make_unique<StealAll>();
  // sscanf with a trailing %c probe: the probe must NOT match, so handles
  // with junk after the closing parenthesis are rejected.
  unsigned a = 0, b = 0, c = 0;
  char junk = 0;
  if (std::sscanf(text.c_str(), "steal-triple(%u,%u,%u)%c", &a, &b, &c,
                  &junk) == 3) {
    return std::make_unique<TripleSteal>(a, b, c);
  }
  unsigned long long depth = 0;
  if (std::sscanf(text.c_str(), "steal-depth(%llu)%c", &depth, &junk) == 1) {
    return std::make_unique<DepthSteal>(depth);
  }
  unsigned long long seed = 0;
  unsigned k = 0;
  if (std::sscanf(text.c_str(), "steal-random(seed=%llu,K=%u)%c", &seed, &k,
                  &junk) == 2) {
    return std::make_unique<RandomTripleSteal>(seed, k);
  }
  double p = 0;
  if (std::sscanf(text.c_str(), "steal-bernoulli(seed=%llu,p=%lf)%c", &seed,
                  &p, &junk) == 2) {
    return std::make_unique<BernoulliSteal>(seed, p);
  }
  return nullptr;
}

}  // namespace rader::spec
