// Specification families for the coverage guarantees of Section 7.
//
// For an *ostensibly deterministic* Cilk program (its view-oblivious strands
// are fixed across schedules and its reducers are semantically associative),
// the paper shows:
//
//  * Theorem 6: all possible *update* strands can be elicited with Θ(M)
//    steal specifications, where M is the maximum number of pending
//    continuations along any path — continuations are stolen breadth-first,
//    grouping continuations by the number of P nodes on their root-to-strand
//    parse-tree path (== the spawn depth the engine tracks).
//
//  * Theorem 7: Ω(K³) reduce trees are necessary and O(K³) suffice to elicit
//    every *reduce* strand over a sync block with K continuations — one
//    specification per triple a < b < c, each eliciting the reduce of update
//    subsequences [a,b) and [b,c).
//
// Together, O(KD + K³) specifications exhaustively check for determinacy
// races between view-oblivious and view-aware strands.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "spec/steal_spec.hpp"

namespace rader::spec {

/// Theorem 6 family: one DepthSteal spec per spawn-depth class 0..max_depth.
std::vector<std::unique_ptr<StealSpec>> update_coverage_family(
    std::uint64_t max_depth);

/// Theorem 7 family: one TripleSteal spec per triple 0 <= a < b < c < k,
/// i.e. C(k,3) specifications.  Also includes the pair specs (a < b = c) so
/// that reduces into the leftmost view of two-steal schedules are covered.
std::vector<std::unique_ptr<StealSpec>> reduce_coverage_family(
    std::uint32_t k);

/// Number of specs reduce_coverage_family(k) produces (for the Θ(K³) bench).
std::uint64_t reduce_coverage_family_size(std::uint32_t k);

/// The full O(KD + K³) family of Section 7.
std::vector<std::unique_ptr<StealSpec>> full_coverage_family(
    std::uint32_t k, std::uint64_t max_depth);

}  // namespace rader::spec
