// Steal specifications.
//
// "The SP+ algorithm takes as input a Cilk program, its input, and a steal
// specification that effectively fixes the schedule.  That is, a steal
// specification specifies the program points at which steals occur and which
// reduce operations execute."  (Section 1)
//
// A specification answers two questions as the serial engine executes:
//
//  1. At each continuation point (just after a spawned child returns):
//     is this continuation *stolen*?  A stolen continuation makes the engine
//     mint a fresh view ID and push a new view epoch — the serial simulation
//     of the runtime creating an identity view (view invariant 2, §5).
//
//  2. At each continuation point (before the steal decision) and at each
//     sync: how many *top-merges* should the runtime perform now?  A
//     top-merge reduces the two newest view epochs of the current frame —
//     exactly the "runtime always reduces adjacent pairs of views" behavior.
//     Since the engine executes serially, choosing *when* merges happen
//     determines the shape of the reduce tree, which is how the Θ(K³)
//     specification family of Theorem 7 elicits every possible reduce strand
//     (every reduce of adjacent subsequences ⟨k_a..k_{b-1}⟩ ⊗ ⟨k_b..k_{c-1}⟩).
//     Merges that a spec does not request are performed automatically at the
//     sync (right-to-left fold), mirroring lazy/opportunistic reduction.
//
// Following Section 8, specifications are constant-space: "the steal
// specification can be as simple as specifying which three continuations to
// steal in a sync block ... or a random seed and the maximum sync block
// size".  Every concrete spec here is a few words of state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/types.hpp"

namespace rader::spec {

/// Context describing one continuation point (or sync) to a specification.
struct PointCtx {
  FrameId frame = kInvalidFrame;
  std::uint32_t sync_block = 0;   // index of the current sync block in frame
  std::uint32_t cont_index = 0;   // continuations executed in this sync block
                                  // (== index of this continuation, 0-based)
  std::uint64_t spawn_depth = 0;  // unsynced spawns by this frame + ancestors
                                  // (the paper's "continuation depth": the
                                  // number of P nodes on the root-to-strand
                                  // path in the canonical SP parse tree)
  std::uint32_t live_epochs = 0;  // un-reduced view epochs of this frame
};

/// Abstract steal specification.  Implementations must be deterministic
/// functions of the context (so a run is exactly reproducible).
class StealSpec {
 public:
  virtual ~StealSpec() = default;

  /// Should the continuation described by `ctx` be stolen?
  virtual bool steal(const PointCtx& ctx) const = 0;

  /// Number of top-merge reduce operations to perform at this point, before
  /// the steal decision (continuation points) or before completing the sync.
  /// The engine caps the answer at ctx.live_epochs and, at a sync, performs
  /// any remaining merges itself.  Default: fully lazy (merge only at sync).
  virtual std::uint32_t merges_now(const PointCtx& ctx) const {
    (void)ctx;
    return 0;
  }

  /// Human-readable description for reports and benchmark tables.
  virtual std::string describe() const = 0;
};

/// No steals: the plain serial execution.  SP+ under this spec degenerates to
/// the SP-bags algorithm (the paper's "No steals" column in Figures 7/8).
class NoSteal final : public StealSpec {
 public:
  bool steal(const PointCtx&) const override { return false; }
  std::string describe() const override { return "no-steals"; }
};

/// Steal every continuation (maximum view churn; useful for stress tests).
class StealAll final : public StealSpec {
 public:
  bool steal(const PointCtx&) const override { return true; }
  std::string describe() const override { return "steal-all"; }
};

/// Steal the continuations at indices {a, b, c} of every sync block, and
/// merge so that the reduce of the views created at `a` and `b` — i.e. the
/// reduce strand combining update subsequences [a,b) and [b,c) — is elicited
/// directly (the Theorem 7 construction).  Pass a==b==c to steal one point.
class TripleSteal final : public StealSpec {
 public:
  TripleSteal(std::uint32_t a, std::uint32_t b, std::uint32_t c);

  bool steal(const PointCtx& ctx) const override;
  std::uint32_t merges_now(const PointCtx& ctx) const override;
  std::string describe() const override;

  std::uint32_t a() const { return a_; }
  std::uint32_t b() const { return b_; }
  std::uint32_t c() const { return c_; }

 private:
  std::uint32_t a_, b_, c_;
};

/// Steal every continuation whose spawn depth equals `depth` — the
/// breadth-first classes of Theorem 6, which elicit every possible *update*
/// strand across the family depth = 0..D (the paper's "Check updates"
/// configuration steals "at continuation depth that's half of the maximum
/// sync block size").
class DepthSteal final : public StealSpec {
 public:
  explicit DepthSteal(std::uint64_t depth) : depth_(depth) {}

  bool steal(const PointCtx& ctx) const override {
    return ctx.spawn_depth == depth_;
  }
  std::string describe() const override;

 private:
  std::uint64_t depth_;
};

/// Randomized spec as shipped in Rader: "a random seed and the maximum sync
/// block size, in which case three different points are chosen randomly for
/// each sync block".  The three indices for a sync block are a deterministic
/// hash of (seed, frame, sync_block), so the run is reproducible from the
/// seed alone; merges are requested so the (a,b,c) reduce strand is elicited.
class RandomTripleSteal final : public StealSpec {
 public:
  RandomTripleSteal(std::uint64_t seed, std::uint32_t max_sync_block);

  bool steal(const PointCtx& ctx) const override;
  std::uint32_t merges_now(const PointCtx& ctx) const override;
  std::string describe() const override;

 private:
  struct Triple {
    std::uint32_t a, b, c;
  };
  Triple triple_for(const PointCtx& ctx) const;

  std::uint64_t seed_;
  std::uint32_t max_k_;
};

/// Steal each continuation independently with probability `p` (derived from
/// a deterministic hash, so still reproducible).  Used by the property tests
/// to explore schedule space.
class BernoulliSteal final : public StealSpec {
 public:
  BernoulliSteal(std::uint64_t seed, double p) : seed_(seed), p_(p) {}

  bool steal(const PointCtx& ctx) const override;
  std::uint32_t merges_now(const PointCtx& ctx) const override;
  std::string describe() const override;

 private:
  std::uint64_t seed_;
  double p_;
};

/// Parse a `describe()` string back into the specification it names — the
/// inverse of StealSpec::describe(), used by `rader --replay <handle>` to
/// re-run exactly one eliciting specification from a prior report
/// (`found_under` / `replay_handles`).  Recognized handles: "no-steals",
/// "steal-all", "steal-triple(a,b,c)", "steal-depth(d)",
/// "steal-random(seed=S,K=K)", "steal-bernoulli(seed=S,p=P)".  Returns
/// nullptr when `text` is not a recognized handle.  (Bernoulli handles
/// round-trip p through its 6-decimal rendering.)
std::unique_ptr<StealSpec> from_description(const std::string& text);

}  // namespace rader::spec
