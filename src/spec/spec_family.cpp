#include "spec/spec_family.hpp"

namespace rader::spec {

std::vector<std::unique_ptr<StealSpec>> update_coverage_family(
    std::uint64_t max_depth) {
  std::vector<std::unique_ptr<StealSpec>> family;
  family.reserve(max_depth + 1);
  for (std::uint64_t d = 0; d <= max_depth; ++d) {
    family.push_back(std::make_unique<DepthSteal>(d));
  }
  return family;
}

std::vector<std::unique_ptr<StealSpec>> reduce_coverage_family(
    std::uint32_t k) {
  std::vector<std::unique_ptr<StealSpec>> family;
  for (std::uint32_t a = 0; a < k; ++a) {
    for (std::uint32_t b = a + 1; b < k; ++b) {
      // Pair spec (steals at a and b only): the sync folds the view created
      // at b into the one created at a, then that into the leftmost view.
      family.push_back(std::make_unique<TripleSteal>(a, b, b));
      for (std::uint32_t c = b + 1; c < k; ++c) {
        family.push_back(std::make_unique<TripleSteal>(a, b, c));
      }
    }
  }
  return family;
}

std::uint64_t reduce_coverage_family_size(std::uint32_t k) {
  const std::uint64_t n = k;
  const std::uint64_t pairs = n * (n - 1) / 2;
  const std::uint64_t triples = (n >= 3) ? n * (n - 1) * (n - 2) / 6 : 0;
  return pairs + triples;
}

std::vector<std::unique_ptr<StealSpec>> full_coverage_family(
    std::uint32_t k, std::uint64_t max_depth) {
  auto family = update_coverage_family(max_depth);
  auto reduces = reduce_coverage_family(k);
  family.reserve(family.size() + reduces.size());
  for (auto& s : reduces) family.push_back(std::move(s));
  return family;
}

}  // namespace rader::spec
