#include "fuzz/fuzzer.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/metrics.hpp"

namespace rader::fuzz {
namespace {

void progress(const FuzzOptions& options, const std::string& line) {
  if (options.on_progress) options.on_progress(line);
}

std::string artifact_stem(const std::string& out_dir, std::uint64_t seed,
                          std::size_t n) {
  std::ostringstream os;
  os << out_dir << "/div-seed" << seed << "-" << n;
  return os.str();
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

/// Re-record the `expect` keys of a reproducer from an actual replay, so
/// the artifact carries the race set it reproduces.
void record_expectations(dag::Reproducer& repro) {
  std::string error;
  if (const auto replay = replay_reproducer(repro, &error)) {
    repro.expect = replay->keys;
  }
}

/// Persist one diverging (seed, spec) pair: full reproducer, optionally its
/// shrunk form and a litmus snippet.  Returns the paths written.
std::vector<std::string> persist_divergence(const FuzzOptions& options,
                                            FuzzStats& stats,
                                            std::uint64_t seed,
                                            const dag::Reproducer& full,
                                            const Divergence& first) {
  std::vector<std::string> written;
  const std::string stem =
      artifact_stem(options.out_dir, seed, stats.artifacts_written);

  dag::Reproducer artifact = full;
  record_expectations(artifact);
  if (!dag::save_reproducer(artifact, stem + ".rprog")) {
    progress(options, "fuzz: FAILED to write " + stem + ".rprog");
    return written;
  }
  written.push_back(stem + ".rprog");

  if (options.shrink) {
    const ShrinkPredicate pred =
        divergence_predicate(first.kind, options.differ);
    if (pred(full)) {
      const ShrinkResult shrunk = shrink(full, pred, options.shrinker);
      dag::Reproducer minimal = shrunk.repro;
      minimal.note = first.kind + ": " + first.detail +
                     " (shrunk " + std::to_string(shrunk.initial_actions) +
                     " -> " + std::to_string(shrunk.final_actions) +
                     " actions)";
      record_expectations(minimal);
      if (dag::save_reproducer(minimal, stem + ".min.rprog")) {
        written.push_back(stem + ".min.rprog");
      }
      if (write_text_file(stem + ".litmus.cc", litmus_snippet(minimal))) {
        written.push_back(stem + ".litmus.cc");
      }
      std::ostringstream os;
      os << "fuzz: shrunk seed " << seed << " from " << shrunk.initial_actions
         << " to " << shrunk.final_actions << " actions in " << shrunk.rounds
         << " round(s), " << shrunk.predicate_calls << " predicate call(s)";
      progress(options, os.str());
    } else {
      progress(options,
               "fuzz: divergence on seed " + std::to_string(seed) +
                   " did not re-fire under the shrink predicate; kept the "
                   "full reproducer only");
    }
  }
  return written;
}

}  // namespace

FuzzStats run_fuzz(const FuzzOptions& options) {
  FuzzStats stats;
  metrics::Stopwatch clock;

  if (!options.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    if (ec) {
      progress(options, "fuzz: cannot create out dir '" + options.out_dir +
                            "': " + ec.message());
    }
  }

  for (std::uint64_t seed = options.start_seed;; ++seed) {
    if (clock.seconds() >= options.seconds) break;
    if (options.max_seeds != 0 &&
        stats.seeds >= options.max_seeds) {
      break;
    }

    const dag::RandomProgramParams params = fuzz_params(seed);
    for (const auto& steal_spec : spec_battery(seed)) {
      dag::RandomProgram program(params);
      const ExecutionCheck check =
          check_execution(program, *steal_spec, options.differ);
      ++stats.executions;
      stats.races_confirmed += check.races_confirmed;
      stats.single_exec_misses += check.single_exec_miss ? 1 : 0;
      if (check.divergences.empty()) continue;

      stats.divergences += check.divergences.size();
      for (const Divergence& d : check.divergences) {
        if (stats.sample.size() < 8) stats.sample.push_back(d);
        progress(options, "fuzz: DIVERGENCE seed=" + std::to_string(seed) +
                              " spec=" + d.spec_handle + " [" + d.kind +
                              "] " + d.detail);
      }

      if (!options.out_dir.empty() &&
          stats.artifacts_written < options.max_artifacts) {
        dag::Reproducer full;
        full.params = params;
        full.tree = program.tree();
        full.spec_handle = steal_spec->describe();
        full.note = check.divergences.front().kind + ": " +
                    check.divergences.front().detail;
        const auto written = persist_divergence(options, stats, seed, full,
                                                check.divergences.front());
        for (const std::string& path : written) {
          stats.artifact_paths.push_back(path);
        }
        if (!written.empty()) ++stats.artifacts_written;
      }
    }
    ++stats.seeds;
  }
  return stats;
}

}  // namespace rader::fuzz
