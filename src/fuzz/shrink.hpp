// Delta-debugging shrinker for diverging reproducers.
//
// Given a reproducer whose differential check fails (fuzz/differ.hpp) and a
// predicate "does this candidate still fail the same way?", the shrinker
// greedily minimizes the program while keeping the predicate true:
//
//   1. ddmin action removal — per frame, remove contiguous chunks of
//      actions (halving the chunk size down to single actions); removing a
//      spawn/call removes its whole subtree and renumbers child indices;
//   2. spawn → call collapse — serializes a child without removing it;
//   3. parameter shrink — drop unused reducers and pool locations (dense
//      index remap), normalize update amounts to 1;
//   4. spec shrink — try simpler specification handles (no-steals,
//      steal-all, smaller family indices of the current handle's kind).
//
// Rounds repeat until a whole round accepts nothing (fixpoint) or a budget
// trips.  Every accepted step preserves the predicate by construction and
// never increases action_count — the two invariants the property tests pin.
//
// `litmus_snippet` renders a reproducer as a ready-to-paste litmus-style
// C++ test, so a minimized overnight find can be checked in directly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "dag/program_serial.hpp"
#include "fuzz/differ.hpp"

namespace rader::fuzz {

/// "Does this candidate still exhibit the divergence?"  Must be a pure
/// function of the reproducer (the differ is deterministic).
using ShrinkPredicate = std::function<bool(const dag::Reproducer&)>;

struct ShrinkOptions {
  std::size_t max_rounds = 32;            // fixpoint cap
  std::uint64_t max_predicate_calls = 20000;

  /// Observer invoked after every ACCEPTED step with the new (smaller)
  /// reproducer and the rule that produced it — the property tests use it
  /// to assert predicate preservation and action-count monotonicity.
  std::function<void(const dag::Reproducer&, const std::string& rule)>
      on_accept;
};

struct ShrinkResult {
  dag::Reproducer repro;             // the minimized reproducer
  std::size_t initial_actions = 0;
  std::size_t final_actions = 0;
  std::size_t rounds = 0;            // full rounds executed
  std::uint64_t predicate_calls = 0;
  std::uint64_t accepted_steps = 0;
  bool reached_fixpoint = false;     // false = a budget tripped first
};

/// Minimize `seed` while `still_diverges` stays true.  `seed` itself must
/// satisfy the predicate (callers check before shrinking); if it does not,
/// the result is `seed` unchanged with zero accepted steps.
ShrinkResult shrink(const dag::Reproducer& seed,
                    const ShrinkPredicate& still_diverges,
                    const ShrinkOptions& options = {});

/// Predicate: check_reproducer still yields >= 1 divergence of `kind`
/// (empty kind = any divergence).
ShrinkPredicate divergence_predicate(std::string kind,
                                     DifferOptions options = {});

/// Ready-to-paste litmus-style C++ rendering of a reproducer: a gtest case
/// that rebuilds the program with the repo's runtime API and re-checks it
/// under the recorded specification.
std::string litmus_snippet(const dag::Reproducer& r);

}  // namespace rader::fuzz
