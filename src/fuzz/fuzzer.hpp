// The differential fuzz loop.
//
// Drives seed-derived random Cilk programs (dag/random_program.hpp) through
// the differential checker (fuzz/differ.hpp) under a battery of steal
// specifications, within a wall-clock budget.  Every divergence becomes a
// persisted reproducer artifact (when an output directory is configured):
//
//   <out>/div-seed<S>-<n>.rprog        the full diverging program
//   <out>/div-seed<S>-<n>.min.rprog    delta-debugged minimal form (--shrink)
//   <out>/div-seed<S>-<n>.litmus.cc    ready-to-paste litmus-style test
//
// Reproducers record the eliciting spec handle and the canonical race keys
// (`expect` lines) observed at capture time, so `rader --repro=FILE` can
// verify byte-identical reproduction later.  tools/fuzz_detectors.cpp is a
// thin CLI wrapper over run_fuzz().
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/differ.hpp"
#include "fuzz/shrink.hpp"

namespace rader::fuzz {

struct FuzzOptions {
  double seconds = 30.0;          // wall-clock budget
  std::uint64_t start_seed = 1;
  std::uint64_t max_seeds = 0;    // 0 = no seed cap (budget-limited only)
  std::string out_dir;            // empty = don't persist artifacts
  bool shrink = false;            // delta-debug each diverging program
  std::size_t max_artifacts = 16; // per-run cap on persisted reproducers
  DifferOptions differ;
  ShrinkOptions shrinker;

  /// Optional progress sink (one line per event); null = silent.
  std::function<void(const std::string&)> on_progress;
};

struct FuzzStats {
  std::uint64_t seeds = 0;               // seeds fully processed
  std::uint64_t executions = 0;          // program × spec checks run
  std::uint64_t races_confirmed = 0;     // oracle-confirmed racing artifacts
  std::uint64_t single_exec_misses = 0;  // Figure-6 corners escalated
  std::uint64_t divergences = 0;         // total divergences observed
  std::uint64_t artifacts_written = 0;
  std::vector<Divergence> sample;        // first few divergences, for reports
  std::vector<std::string> artifact_paths;
};

/// Run the fuzz loop.  Returns accumulated statistics; `divergences == 0`
/// means every checked execution agreed with the oracle (modulo documented
/// Figure-6 escalation).
FuzzStats run_fuzz(const FuzzOptions& options);

}  // namespace rader::fuzz
