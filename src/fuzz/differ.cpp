#include "fuzz/differ.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "core/peerset.hpp"
#include "core/provenance.hpp"
#include "core/spplus.hpp"
#include "core/sweep.hpp"
#include "dag/oracle.hpp"
#include "dag/recorder.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/spec_family.hpp"
#include "tool/tool.hpp"

namespace rader::fuzz {
namespace {

std::string hex(std::uintptr_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Family-level completeness: must SOME spec in the Section-7 family make
/// SP+ report address `addr`?  (The escalation path for the Figure-6
/// single-slot shadow corner — the guarantee the paper actually deploys.)
bool family_reports(dag::RandomProgram& program, std::uintptr_t addr) {
  SerialEngine::Stats probe;
  {
    spec::NoSteal none;
    SerialEngine engine(nullptr, &none);
    engine.run([&] { program(); });
    probe = engine.stats();
  }
  const auto k = std::min<std::uint32_t>(probe.max_sync_block, 10);
  const auto d = std::min<std::uint64_t>(probe.max_spawn_depth, 24);
  auto family = spec::full_coverage_family(k, d);
  family.push_back(std::make_unique<spec::NoSteal>());
  family.push_back(std::make_unique<spec::StealAll>());
  // The closure check re-runs one program under the whole Section-7 family —
  // exactly the shape the prefix-sharing sweep strategy is built for:
  // lexicographic neighbours share deep decision prefixes, so the
  // checkpoint/fork scheduler pays detector cost only for the divergent
  // suffixes, and a program whose runs are not address-stable silently
  // falls back to fresh runs (core/sweep.hpp).
  SweepOptions options;
  options.threads = 1;
  options.strategy = SweepStrategy::kPrefix;
  const SweepResult swept =
      sweep_family(shared_program([&program] { program(); }), family, options);
  for (const auto& race : swept.log.determinacy_races()) {
    if (race.addr == addr) return true;
  }
  return false;
}

/// Oracle verdict embedded in a provenance record ("" when absent).
std::string provenance_oracle(const std::string& provenance_json) {
  static constexpr char kKey[] = "\"oracle\":\"";
  const std::size_t at = provenance_json.find(kKey);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + sizeof(kKey) - 1;
  const std::size_t end = provenance_json.find('"', begin);
  if (end == std::string::npos) return "";
  return provenance_json.substr(begin, end - begin);
}

}  // namespace

ExecutionCheck check_execution(dag::RandomProgram& program,
                               const spec::StealSpec& steal_spec,
                               const DifferOptions& options) {
#ifdef RADER_FUZZ_INJECT_BUG
  DifferOptions opts = options;
  opts.inject_bug = true;
  const DifferOptions& eff = opts;
#else
  const DifferOptions& eff = options;
#endif
  ExecutionCheck out;
  const std::string handle = steal_spec.describe();
  const auto diverge = [&](std::string kind, std::string detail) {
    out.divergences.push_back(
        Divergence{std::move(kind), std::move(detail), handle});
  };

  RaceLog sp_log, ps_log;
  SpPlusDetector spplus(&sp_log);
  PeerSetDetector peerset(&ps_log);
  dag::Recorder recorder;
  ToolChain chain;
  chain.add(&spplus);
  chain.add(&peerset);
  chain.add(&recorder);
  SerialEngine engine(&chain, &steal_spec);
  engine.run([&] { program(); });

  const dag::OracleResult oracle = dag::run_oracle(recorder.dag());
  const auto [pool_lo, pool_hi] = program.pool_range();

  // SP+ soundness per address + completeness per execution.
  for (const auto& race : sp_log.determinacy_races()) {
    if (oracle.racing_addrs.count(race.addr) == 0) {
      diverge("spplus-false-positive",
              "SP+ false positive at " + hex(race.addr) + " ('" +
                  race.current_label + "')");
    }
    if (eff.inject_bug && race.addr >= pool_lo && race.addr < pool_hi) {
      // The seeded bug: pretend every pool report is unsound.
      diverge("injected-bug",
              "injected bug: SP+ pool report at " + hex(race.addr) + " ('" +
                  race.current_label + "') treated as a false positive");
    }
  }
  if (sp_log.determinacy_count() > 0 && !oracle.any_determinacy) {
    diverge("spplus-verdict", "SP+ reports, oracle does not");
  } else if (sp_log.determinacy_count() == 0 && oracle.any_determinacy) {
    // Single-execution miss: allowed ONLY as the known Figure-6 corner,
    // and only if the Section-7 family closes it per location.  The
    // family guarantee is stated for races involving a view-OBLIVIOUS
    // instruction; and only the pool's addresses are stable across the
    // family's re-executions (view objects are reallocated per run), so
    // escalation is checked on oblivious-involved pool locations.
    out.single_exec_miss = true;
    if (eff.check_family_closure) {
      for (const std::uintptr_t addr : oracle.racing_addrs_oblivious) {
        if (addr < pool_lo || addr >= pool_hi) continue;
        if (!family_reports(program, addr)) {
          diverge("family-miss",
                  "race at pool+" + hex(addr - pool_lo) +
                      " missed by SP+ AND by the whole Section-7 family");
        }
      }
    }
  }

  // Peer-Set vs the oracle's peer-set relation.
  for (const auto& race : ps_log.view_read_races()) {
    if (oracle.racing_reducers.count(race.reducer) == 0) {
      diverge("peerset-false-positive",
              "Peer-Set false positive on reducer " +
                  std::to_string(race.reducer));
    }
  }
  if ((ps_log.view_read_count() > 0) != oracle.any_view_read) {
    diverge("peerset-verdict",
            "Peer-Set verdict " +
                std::to_string(ps_log.view_read_count() > 0) + " vs oracle " +
                std::to_string(oracle.any_view_read));
  }

  out.races_confirmed =
      oracle.racing_addrs.size() + oracle.racing_reducers.size();
  return out;
}

std::vector<Divergence> check_reproducer(const dag::Reproducer& repro,
                                         const DifferOptions& options) {
  const auto steal_spec = spec::from_description(repro.spec_handle);
  if (!steal_spec) {
    return {Divergence{"invalid-spec",
                       "unparseable spec handle '" + repro.spec_handle + "'",
                       repro.spec_handle}};
  }
  dag::RandomProgram program(repro.tree, repro.params);
  return check_execution(program, *steal_spec, options).divergences;
}

std::vector<std::string> canonical_race_keys(const RaceLog& log,
                                             std::uintptr_t pool_lo,
                                             std::uintptr_t pool_hi) {
  std::vector<std::string> keys;
  const auto where = [&](std::uintptr_t addr) -> std::string {
    if (addr >= pool_lo && addr < pool_hi) {
      return "pool+" + hex(addr - pool_lo);
    }
    return "view";
  };
  for (const auto& r : log.determinacy_races()) {
    std::string key = "det " + where(r.addr) + " " +
                      (r.current_kind == AccessKind::kWrite ? "write"
                                                            : "read") +
                      " label=\"" + r.current_label + "\" prior=" +
                      (r.prior_was_write ? "write" : "read") +
                      " aware=" + (r.current_view_aware ? "1" : "0");
    const std::string verdict = provenance_oracle(r.provenance_json);
    if (!verdict.empty()) key += " oracle=" + verdict;
    keys.push_back(std::move(key));
  }
  for (const auto& r : log.view_read_races()) {
    std::string key = "vr reducer=" + std::to_string(r.reducer) +
                      " prior=\"" + r.prior_label + "\" current=\"" +
                      r.current_label + "\"";
    const std::string verdict = provenance_oracle(r.provenance_json);
    if (!verdict.empty()) key += " oracle=" + verdict;
    keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::optional<ReplayResult> replay_reproducer(const dag::Reproducer& repro,
                                              std::string* error,
                                              const ReplayOptions& options) {
  const auto steal_spec = spec::from_description(repro.spec_handle);
  if (!steal_spec) {
    if (error != nullptr) {
      *error = "unparseable spec handle '" + repro.spec_handle + "'";
    }
    return std::nullopt;
  }
  dag::RandomProgram program(repro.tree, repro.params);
  ReplayResult out;
  {
    SpPlusDetector spplus(&out.log);
    PeerSetDetector peerset(&out.log);
    ToolChain chain;
    chain.add(&spplus);
    chain.add(&peerset);
    SerialEngine engine(&chain, steal_spec.get());
    engine.run([&] { program(); });
  }
  out.log.stamp_found_under(steal_spec->describe());
  if (options.annotate) {
    annotate_provenance(out.log, [&] { program(); });
  }
  const auto [pool_lo, pool_hi] = program.pool_range();
  out.keys = canonical_race_keys(out.log, pool_lo, pool_hi);
  out.reducer_total = program.reducer_total();
  out.action_count = program.action_count();
  return out;
}

dag::RandomProgramParams fuzz_params(std::uint64_t seed) {
  dag::RandomProgramParams params;
  params.seed = seed;
  params.max_depth = 2 + seed % 3;
  params.max_actions = 5 + seed % 7;
  params.num_reducers = 1 + seed % 3;
  params.num_locations = 3 + seed % 6;
  params.p_access = 0.25;
  params.p_update = 0.10;
  params.p_update_shared = 0.08;
  params.p_raw_view = 0.05;
  params.p_reducer_read = 0.07;
  return params;
}

std::vector<std::unique_ptr<spec::StealSpec>> spec_battery(
    std::uint64_t seed) {
  std::vector<std::unique_ptr<spec::StealSpec>> battery;
  battery.push_back(std::make_unique<spec::NoSteal>());
  battery.push_back(std::make_unique<spec::StealAll>());
  battery.push_back(std::make_unique<spec::BernoulliSteal>(seed * 3 + 1, 0.3));
  battery.push_back(std::make_unique<spec::BernoulliSteal>(seed * 3 + 2, 0.7));
  battery.push_back(std::make_unique<spec::RandomTripleSteal>(seed, 12));
  return battery;
}

}  // namespace rader::fuzz
