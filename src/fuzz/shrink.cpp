#include "fuzz/shrink.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <utility>
#include <set>
#include <sstream>

namespace rader::fuzz {
namespace {

using dag::Action;
using dag::ActionType;
using dag::ProgramTree;

bool is_nesting(ActionType t) {
  return t == ActionType::kSpawn || t == ActionType::kCall;
}

bool uses_reducer(ActionType t) {
  switch (t) {
    case ActionType::kUpdate:
    case ActionType::kUpdateShared:
    case ActionType::kGetValue:
    case ActionType::kSetValue:
    case ActionType::kRawRead:
    case ActionType::kRawWrite:
      return true;
    default:
      return false;
  }
}

bool uses_location(ActionType t) {
  return t == ActionType::kRead || t == ActionType::kWrite ||
         t == ActionType::kUpdateShared;
}

ProgramTree* locate(ProgramTree& root,
                    const std::vector<std::uint32_t>& path) {
  ProgramTree* f = &root;
  for (const std::uint32_t i : path) f = &f->children[i];
  return f;
}

void collect_paths(const ProgramTree& frame, std::vector<std::uint32_t>& cur,
                   std::vector<std::vector<std::uint32_t>>& out) {
  out.push_back(cur);
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(frame.children.size()); ++i) {
    cur.push_back(i);
    collect_paths(frame.children[i], cur, out);
    cur.pop_back();
  }
}

std::vector<std::vector<std::uint32_t>> frame_paths(const ProgramTree& root) {
  std::vector<std::vector<std::uint32_t>> out;
  std::vector<std::uint32_t> cur;
  collect_paths(root, cur, out);
  return out;
}

/// Remove actions [start, start+len) of `frame`, dropping the subtrees of
/// removed spawn/call actions and renumbering the survivors' child indices.
void remove_range(ProgramTree& frame, std::size_t start, std::size_t len) {
  const std::size_t end = std::min(frame.actions.size(), start + len);
  std::vector<std::uint32_t> removed_children;
  for (std::size_t i = start; i < end; ++i) {
    if (is_nesting(frame.actions[i].type)) {
      removed_children.push_back(frame.actions[i].child);
    }
  }
  frame.actions.erase(frame.actions.begin() + static_cast<std::ptrdiff_t>(start),
                      frame.actions.begin() + static_cast<std::ptrdiff_t>(end));
  for (auto it = removed_children.rbegin(); it != removed_children.rend();
       ++it) {
    frame.children.erase(frame.children.begin() + *it);
  }
  for (Action& a : frame.actions) {
    if (!is_nesting(a.type)) continue;
    std::uint32_t shift = 0;
    for (const std::uint32_t r : removed_children) shift += (r < a.child);
    a.child -= shift;
  }
}

void walk_actions(const ProgramTree& frame,
                  const std::function<void(const Action&)>& fn) {
  for (const Action& a : frame.actions) fn(a);
  for (const ProgramTree& c : frame.children) walk_actions(c, fn);
}

void map_actions(ProgramTree& frame,
                 const std::function<void(Action&)>& fn) {
  for (Action& a : frame.actions) fn(a);
  for (ProgramTree& c : frame.children) map_actions(c, fn);
}

struct Ctx {
  const ShrinkPredicate& pred;
  const ShrinkOptions& opts;
  ShrinkResult& res;

  bool budget_ok() const {
    return res.predicate_calls < opts.max_predicate_calls;
  }

  /// Evaluate the predicate on `candidate`; on success move it into `base`.
  bool try_accept(dag::Reproducer& base, dag::Reproducer&& candidate,
                  const char* rule) {
    if (!budget_ok()) return false;
    ++res.predicate_calls;
    if (!pred(candidate)) return false;
    base = std::move(candidate);
    ++res.accepted_steps;
    if (opts.on_accept) opts.on_accept(base, rule);
    return true;
  }
};

/// Rule 1: ddmin-style chunked action removal over every frame.
bool rule_drop_actions(Ctx& ctx, dag::Reproducer& base) {
  bool any = false;
  bool structure_changed = true;
  while (structure_changed && ctx.budget_ok()) {
    structure_changed = false;
    for (const auto& path : frame_paths(base.tree)) {
      std::size_t n = locate(base.tree, path)->actions.size();
      for (std::size_t chunk = std::max<std::size_t>(n, 1); chunk >= 1;
           chunk /= 2) {
        std::size_t start = 0;
        while (ctx.budget_ok()) {
          ProgramTree* frame = locate(base.tree, path);
          if (start >= frame->actions.size()) break;
          dag::Reproducer cand = base;
          remove_range(*locate(cand.tree, path), start, chunk);
          if (ctx.try_accept(base, std::move(cand), "drop-actions")) {
            any = true;
            structure_changed = true;  // descendant paths may be stale
          } else {
            start += chunk;
          }
        }
        if (chunk == 1) break;
      }
      // Re-enumerate frames once a subtree may have vanished.
      if (structure_changed) break;
    }
  }
  return any;
}

/// Rule 2: collapse spawns to calls (serializes the child, keeps it).
bool rule_spawn_to_call(Ctx& ctx, dag::Reproducer& base) {
  bool any = false;
  for (const auto& path : frame_paths(base.tree)) {
    const std::size_t n = locate(base.tree, path)->actions.size();
    for (std::size_t i = 0; i < n && ctx.budget_ok(); ++i) {
      if (locate(base.tree, path)->actions[i].type != ActionType::kSpawn) {
        continue;
      }
      dag::Reproducer cand = base;
      locate(cand.tree, path)->actions[i].type = ActionType::kCall;
      any |= ctx.try_accept(base, std::move(cand), "spawn-to-call");
    }
  }
  return any;
}

/// Rule 3: shrink parameters — drop unused reducers/locations (dense
/// remap), normalize update amounts.
bool rule_shrink_params(Ctx& ctx, dag::Reproducer& base) {
  bool any = false;

  std::set<std::uint32_t> used_reds, used_locs;
  bool nontrivial_amount = false;
  walk_actions(base.tree, [&](const Action& a) {
    if (uses_reducer(a.type)) used_reds.insert(a.red);
    if (uses_location(a.type)) used_locs.insert(a.loc);
    if ((a.type == ActionType::kUpdate ||
         a.type == ActionType::kUpdateShared ||
         a.type == ActionType::kSetValue) &&
        a.amount != 1) {
      nontrivial_amount = true;
    }
  });

  if (used_reds.size() < base.params.num_reducers) {
    dag::Reproducer cand = base;
    std::map<std::uint32_t, std::uint32_t> remap;
    for (const std::uint32_t r : used_reds) {
      remap.emplace(r, static_cast<std::uint32_t>(remap.size()));
    }
    map_actions(cand.tree, [&](Action& a) {
      if (uses_reducer(a.type)) a.red = remap.at(a.red);
    });
    cand.params.num_reducers = static_cast<std::uint32_t>(used_reds.size());
    any |= ctx.try_accept(base, std::move(cand), "drop-reducers");
  }

  if (used_locs.size() < base.params.num_locations) {
    dag::Reproducer cand = base;
    std::map<std::uint32_t, std::uint32_t> remap;
    for (const std::uint32_t l : used_locs) {
      remap.emplace(l, static_cast<std::uint32_t>(remap.size()));
    }
    map_actions(cand.tree, [&](Action& a) {
      if (uses_location(a.type)) a.loc = remap.at(a.loc);
    });
    cand.params.num_locations =
        std::max<std::uint32_t>(1, static_cast<std::uint32_t>(used_locs.size()));
    any |= ctx.try_accept(base, std::move(cand), "drop-locations");
  }

  if (nontrivial_amount) {
    dag::Reproducer cand = base;
    map_actions(cand.tree, [&](Action& a) {
      if (a.type == ActionType::kUpdate ||
          a.type == ActionType::kUpdateShared ||
          a.type == ActionType::kSetValue) {
        a.amount = 1;
      }
    });
    any |= ctx.try_accept(base, std::move(cand), "normalize-amounts");
  }

  return any;
}

/// Well-founded simplicity order over spec handles: kind rank (no-steals
/// simplest) plus the sum of the handle's numeric parameters.  Spec shrinks
/// must strictly decrease this, so the rule terminates and cannot flip-flop
/// between two handles that both satisfy the predicate.
std::pair<int, double> spec_rank(const std::string& handle) {
  int kind = 6;
  if (handle == "no-steals") kind = 0;
  else if (handle == "steal-all") kind = 1;
  else if (handle.rfind("steal-triple(", 0) == 0) kind = 2;
  else if (handle.rfind("steal-depth(", 0) == 0) kind = 3;
  else if (handle.rfind("steal-random(", 0) == 0) kind = 4;
  else if (handle.rfind("steal-bernoulli(", 0) == 0) kind = 5;
  double weight = 0;
  for (std::size_t i = 0; i < handle.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(handle[i])) == 0) continue;
    std::size_t end = i;
    weight += std::stod(handle.substr(i), &end);
    i += end;
  }
  return {kind, weight};
}

/// Simpler specification handles to try for `handle`, simplest first —
/// the "shrink the spec family index" rule.
std::vector<std::string> spec_candidates(const std::string& handle) {
  std::vector<std::string> out{"no-steals", "steal-all"};
  unsigned a = 0, b = 0, c = 0, k = 0;
  unsigned long long d = 0, seed = 0;
  double p = 0;
  char junk = 0;
  const auto push = [&](std::unique_ptr<spec::StealSpec> s) {
    out.push_back(s->describe());
  };
  if (std::sscanf(handle.c_str(), "steal-triple(%u,%u,%u)%c", &a, &b, &c,
                  &junk) == 3) {
    push(std::make_unique<spec::TripleSteal>(0, 1, 2));
    push(std::make_unique<spec::TripleSteal>(0, 0, 0));
    push(std::make_unique<spec::TripleSteal>(a / 2, b / 2, c / 2));
    push(std::make_unique<spec::TripleSteal>(a, b, b));
  } else if (std::sscanf(handle.c_str(), "steal-depth(%llu)%c", &d, &junk) ==
             1) {
    push(std::make_unique<spec::DepthSteal>(0));
    if (d > 0) push(std::make_unique<spec::DepthSteal>(d / 2));
    if (d > 0) push(std::make_unique<spec::DepthSteal>(d - 1));
  } else if (std::sscanf(handle.c_str(), "steal-random(seed=%llu,K=%u)%c",
                         &seed, &k, &junk) == 2) {
    push(std::make_unique<spec::TripleSteal>(0, 1, 2));
    if (k > 1) push(std::make_unique<spec::RandomTripleSteal>(seed, k / 2));
    push(std::make_unique<spec::RandomTripleSteal>(0, k));
  } else if (std::sscanf(handle.c_str(), "steal-bernoulli(seed=%llu,p=%lf)%c",
                         &seed, &p, &junk) == 2) {
    push(std::make_unique<spec::BernoulliSteal>(0, 0.5));
  }
  // Dedup; keep only handles STRICTLY simpler than the current one.
  const auto current = spec_rank(handle);
  std::vector<std::string> uniq;
  for (std::string& s : out) {
    if (s != handle && spec_rank(s) < current &&
        std::find(uniq.begin(), uniq.end(), s) == uniq.end()) {
      uniq.push_back(std::move(s));
    }
  }
  return uniq;
}

/// Rule 4: replace the eliciting spec with a simpler handle.
bool rule_shrink_spec(Ctx& ctx, dag::Reproducer& base) {
  for (const std::string& handle : spec_candidates(base.spec_handle)) {
    if (!ctx.budget_ok()) break;
    dag::Reproducer cand = base;
    cand.spec_handle = handle;
    if (ctx.try_accept(base, std::move(cand), "shrink-spec")) return true;
  }
  return false;
}

}  // namespace

ShrinkResult shrink(const dag::Reproducer& seed,
                    const ShrinkPredicate& still_diverges,
                    const ShrinkOptions& options) {
  ShrinkResult res;
  res.repro = seed;
  // Expectation keys describe the ORIGINAL program's race set; they go
  // stale under every edit, so callers re-record them after shrinking.
  res.repro.expect.clear();
  res.initial_actions = seed.tree.action_count();
  Ctx ctx{still_diverges, options, res};
  while (res.rounds < options.max_rounds) {
    bool any = false;
    any |= rule_drop_actions(ctx, res.repro);
    any |= rule_spawn_to_call(ctx, res.repro);
    any |= rule_shrink_params(ctx, res.repro);
    any |= rule_shrink_spec(ctx, res.repro);
    ++res.rounds;
    if (!any) {
      res.reached_fixpoint = true;
      break;
    }
    if (!ctx.budget_ok()) break;
  }
  res.final_actions = res.repro.tree.action_count();
  return res;
}

ShrinkPredicate divergence_predicate(std::string kind, DifferOptions options) {
  return [kind = std::move(kind),
          options](const dag::Reproducer& candidate) {
    for (const Divergence& d : check_reproducer(candidate, options)) {
      if (kind.empty() || d.kind == kind) return true;
    }
    return false;
  };
}

namespace {

/// Pre-order frame numbering for the snippet's frame_<n> functions.
void number_frames(const ProgramTree& frame,
                   std::map<const ProgramTree*, int>& ids) {
  ids.emplace(&frame, static_cast<int>(ids.size()));
  for (const ProgramTree& c : frame.children) number_frames(c, ids);
}

void emit_frame(std::ostringstream& os, const ProgramTree& frame,
                const std::map<const ProgramTree*, int>& ids) {
  os << "  void frame_" << ids.at(&frame) << "() {\n";
  for (const Action& a : frame.actions) {
    switch (a.type) {
      case ActionType::kSpawn:
      case ActionType::kCall:
        os << "    rader::" << (a.type == ActionType::kSpawn ? "spawn"
                                                             : "call")
           << "([&] { frame_" << ids.at(&frame.children[a.child])
           << "(); });\n";
        break;
      case ActionType::kSync:
        os << "    rader::sync();\n";
        break;
      case ActionType::kRead:
        os << "    rader::shadow_read(&pool[" << a.loc
           << "], sizeof(long), rader::SrcTag{\"pool read\"});\n"
           << "    (void)pool[" << a.loc << "];\n";
        break;
      case ActionType::kWrite:
        os << "    rader::shadow_write(&pool[" << a.loc
           << "], sizeof(long), rader::SrcTag{\"pool write\"});\n"
           << "    pool[" << a.loc << "] += 1;\n";
        break;
      case ActionType::kUpdate:
        os << "    reds[" << a.red << "]->update([&](Cnt& c) {\n"
           << "      rader::shadow_write(&c.v, sizeof(c.v), "
              "rader::SrcTag{\"cnt update\"});\n"
           << "      c.v += " << a.amount << ";\n"
           << "    }, rader::SrcTag{\"cnt update\"});\n";
        break;
      case ActionType::kUpdateShared:
        os << "    reds[" << a.red << "]->update([&](Cnt& c) {\n"
           << "      rader::shadow_write(&c.v, sizeof(c.v), "
              "rader::SrcTag{\"cnt update (shared)\"});\n"
           << "      c.v += " << a.amount << ";\n"
           << "      rader::shadow_write(&pool[" << a.loc
           << "], sizeof(long), rader::SrcTag{\"update writes pool\"});\n"
           << "      pool[" << a.loc << "] += 1;\n"
           << "      c.touch = &pool[" << a.loc << "];\n"
           << "    }, rader::SrcTag{\"cnt update (shared)\"});\n";
        break;
      case ActionType::kGetValue:
        os << "    (void)reds[" << a.red
           << "]->get_value(rader::SrcTag{\"get_value\"}).v;\n";
        break;
      case ActionType::kSetValue:
        os << "    reds[" << a.red << "]->set_value(Cnt{" << a.amount
           << ", nullptr}, rader::SrcTag{\"set_value\"});\n";
        break;
      case ActionType::kRawRead:
        os << "    {\n"
           << "      Cnt* raw = static_cast<Cnt*>(reds[" << a.red
           << "]->hyper_leftmost());\n"
           << "      rader::shadow_read(&raw->v, sizeof(raw->v), "
              "rader::SrcTag{\"raw view read\"});\n"
           << "      (void)raw->v;\n"
           << "    }\n";
        break;
      case ActionType::kRawWrite:
        os << "    {\n"
           << "      Cnt* raw = static_cast<Cnt*>(reds[" << a.red
           << "]->hyper_leftmost());\n"
           << "      rader::shadow_write(&raw->v, sizeof(raw->v), "
              "rader::SrcTag{\"raw view write\"});\n"
           << "      raw->v += 1;\n"
           << "    }\n";
        break;
    }
  }
  os << "  }\n";
}

}  // namespace

std::string litmus_snippet(const dag::Reproducer& r) {
  std::map<const ProgramTree*, int> ids;
  number_frames(r.tree, ids);
  std::vector<const ProgramTree*> order(ids.size());
  for (const auto& [frame, id] : ids) order[static_cast<std::size_t>(id)] = frame;

  std::ostringstream os;
  os << "// Generated by the rader fuzz shrinker — minimized differential\n"
        "// reproducer.  Paste into a litmus/regression test, or replay the\n"
        "// .rprog artifact directly:  rader --repro=FILE\n"
        "//\n"
        "// spec: " << r.spec_handle << "\n";
  if (!r.note.empty()) os << "// note: " << r.note << "\n";
  os << "#include <gtest/gtest.h>\n"
        "\n"
        "#include <memory>\n"
        "#include <vector>\n"
        "\n"
        "#include \"core/driver.hpp\"\n"
        "#include \"reducers/reducer.hpp\"\n"
        "#include \"runtime/api.hpp\"\n"
        "#include \"spec/steal_spec.hpp\"\n"
        "\n"
        "namespace {\n"
        "\n"
        "struct Cnt {\n"
        "  long v = 0;\n"
        "  long* touch = nullptr;\n"
        "};\n"
        "struct cnt_monoid {\n"
        "  using value_type = Cnt;\n"
        "  static Cnt identity() { return {}; }\n"
        "  static void reduce(Cnt& left, Cnt& right) {\n"
        "    rader::shadow_read(&right.v, sizeof(right.v),\n"
        "                       rader::SrcTag{\"cnt reduce (read rhs)\"});\n"
        "    rader::shadow_write(&left.v, sizeof(left.v),\n"
        "                        rader::SrcTag{\"cnt reduce (write lhs)\"});\n"
        "    left.v += right.v;\n"
        "    if (right.touch != nullptr) {\n"
        "      rader::shadow_write(right.touch, sizeof(long),\n"
        "                          rader::SrcTag{\"cnt reduce touch\"});\n"
        "      *right.touch += right.v;\n"
        "    }\n"
        "    if (left.touch == nullptr) left.touch = right.touch;\n"
        "  }\n"
        "};\n"
        "using CntReducer = rader::reducer<cnt_monoid>;\n"
        "\n"
        "struct Repro {\n"
        "  std::vector<long> pool;\n"
        "  std::vector<std::unique_ptr<CntReducer>> reds;\n"
        "\n";
  for (const ProgramTree* frame : order) emit_frame(os, *frame, ids);
  os << "\n"
        "  void operator()() {\n"
        "    pool.assign(" << r.params.num_locations << ", 0);\n"
        "    reds.clear();\n"
        "    for (int i = 0; i < " << r.params.num_reducers << "; ++i) {\n"
        "      reds.push_back(\n"
        "          std::make_unique<CntReducer>(rader::SrcTag{\"cnt "
        "reducer\"}));\n"
        "    }\n"
        "    frame_0();\n"
        "    rader::sync();\n"
        "    reds.clear();\n"
        "  }\n"
        "};\n"
        "\n"
        "TEST(FuzzRepro, Minimized) {\n"
        "  Repro program;\n"
        "  const auto steal_spec =\n"
        "      rader::spec::from_description(\"" << r.spec_handle << "\");\n"
        "  ASSERT_NE(steal_spec, nullptr);\n"
        "  const rader::RaceLog log =\n"
        "      rader::Rader::check_determinacy([&] { program(); }, "
        "*steal_spec);\n"
        "  // Pin the diverging verdict this reproducer was minimized for.\n"
        "  EXPECT_TRUE(log.any()) << log.to_string();\n"
        "}\n"
        "\n"
        "}  // namespace\n";
  return os.str();
}

}  // namespace rader::fuzz
