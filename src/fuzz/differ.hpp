// Differential checking: detectors vs the brute-force DAG oracle.
//
// The core predicate of the fuzz subsystem.  One *execution check* runs a
// program under one steal specification with SP+, Peer-Set, and the DAG
// recorder attached, then compares both detector verdicts against the
// ground-truth oracle (dag/oracle.hpp) exactly as the property tests do:
//
//  * SP+ soundness per address (no report off the oracle's racing set) and
//    completeness per execution — a single-execution miss is tolerated only
//    as the known Figure-6 shadow-slot corner, and only if some member of
//    the Section-7 family reports the location (family escalation);
//  * Peer-Set soundness per reducer and verdict agreement.
//
// Any disagreement is a Divergence.  `check_reproducer` runs the whole
// check on a serialized reproducer (dag/program_serial.hpp) — this is the
// predicate the delta-debugging shrinker (fuzz/shrink.hpp) re-evaluates
// after every candidate edit.
//
// `replay_reproducer` is the *reporting* replay: SP+ and Peer-Set into one
// stamped RaceLog, optional provenance annotation, and the canonical
// (process-independent) race keys that `.rprog` files record under `expect`
// and `rader --repro` verifies byte-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/race_report.hpp"
#include "dag/program_serial.hpp"
#include "dag/random_program.hpp"
#include "spec/steal_spec.hpp"

namespace rader::fuzz {

struct DifferOptions {
  /// Escalate single-execution SP+ misses through the Section-7 family
  /// (expensive: O(KD + K³) re-executions).  On: the production fuzz
  /// configuration.  Off: a miss is ignored (shrinker predicates that chase
  /// other divergence kinds don't pay for the family).
  bool check_family_closure = true;

  /// Testing hook: inject a fake detector bug — every SP+ determinacy
  /// report on a pool location is treated as a false positive.  Guarantees
  /// a seeded "divergence" on any program with a parallel pool conflict, so
  /// the shrinker pipeline can be exercised end to end (and CI can prove a
  /// seeded divergence shrinks to a handful of actions).  Also reachable
  /// via `fuzz_detectors --inject-bug` and, for build-level injection, the
  /// RADER_FUZZ_INJECT_BUG compile definition.
  bool inject_bug = false;
};

/// One detector/oracle disagreement.
struct Divergence {
  std::string kind;         // stable id: "spplus-false-positive",
                            // "spplus-verdict", "family-miss",
                            // "peerset-false-positive", "peerset-verdict",
                            // "injected-bug", "invalid-spec"
  std::string detail;       // human-readable one-liner
  std::string spec_handle;  // the eliciting specification
};

/// Result of differentially checking ONE execution (program × spec).
struct ExecutionCheck {
  std::vector<Divergence> divergences;
  std::uint64_t races_confirmed = 0;   // oracle-confirmed racing artifacts
  bool single_exec_miss = false;       // Figure-6 corner observed
};

/// Run the differential check of `program` under `steal_spec`.
ExecutionCheck check_execution(dag::RandomProgram& program,
                               const spec::StealSpec& steal_spec,
                               const DifferOptions& options = {});

/// Instantiate `repro` and differentially check it under its recorded spec.
/// Empty result = clean; an unparseable spec handle yields one
/// "invalid-spec" divergence.  This is the shrinker's predicate primitive.
std::vector<Divergence> check_reproducer(const dag::Reproducer& repro,
                                         const DifferOptions& options = {});

/// Canonical, process-independent dedup keys for a RaceLog produced by a
/// reproducer replay.  Pool addresses render as stable `pool+0xOFF` byte
/// offsets; any other address (reducer view storage, reallocated per run)
/// renders as `view`.  When a race carries a provenance record, its oracle
/// verdict is appended (` oracle=confirmed` …).  Sorted and deduplicated —
/// byte-comparable across processes and machines.
std::vector<std::string> canonical_race_keys(const RaceLog& log,
                                             std::uintptr_t pool_lo,
                                             std::uintptr_t pool_hi);

struct ReplayOptions {
  /// Attach provenance records (core/provenance.hpp) before key extraction,
  /// so keys carry oracle verdicts.
  bool annotate = true;
};

/// Result of the reporting replay of a reproducer.
struct ReplayResult {
  RaceLog log;                     // SP+ + Peer-Set, stamped with the spec
  std::vector<std::string> keys;   // canonical_race_keys of `log`
  long reducer_total = 0;          // determinism witness
  std::size_t action_count = 0;
};

/// Replay `repro` under its spec with SP+ AND Peer-Set sharing one log —
/// the `rader --repro` pipeline.  Returns nullopt (and sets `error`) when
/// the spec handle does not parse.
std::optional<ReplayResult> replay_reproducer(const dag::Reproducer& repro,
                                              std::string* error = nullptr,
                                              const ReplayOptions& options = {});

/// The seed-derived program parameters the fuzz loop explores (varied
/// depth/width/reducer/location counts, §7-targeting action mix).
dag::RandomProgramParams fuzz_params(std::uint64_t seed);

/// The battery of steal specifications each fuzzed program is checked
/// under: no-steals, steal-all, two Bernoulli mixes, one random triple.
std::vector<std::unique_ptr<spec::StealSpec>> spec_battery(std::uint64_t seed);

}  // namespace rader::fuzz
