#include "shadow/reducer_shadow.hpp"

// Header-only today; this translation unit pins the header's compilation so
// interface regressions surface as library build errors.
