// Reducer shadow space for the Peer-Set algorithm.
//
// "The Peer-Set algorithm also maintains a shadow space of shared memory,
// called reader, which maps each reducer to its last reader and the access
// context.  That is, for each reducer h, reader(h) stores the ID of the Cilk
// function F that last read h, and the associated field reader(h).s stores
// the spawn count of F when it last read h."
//
// Reducer IDs are dense (assigned at registration), so this is a flat array.
#pragma once

#include <cstdint>
#include <vector>

#include "dsu/disjoint_set.hpp"
#include "runtime/types.hpp"

namespace rader::shadow {

/// Last-reader record per reducer: the reading frame's disjoint-set node
/// plus the spawn count (F.as + F.ls) at the time of the read.
class ReducerShadow {
 public:
  struct Entry {
    dsu::Node reader = dsu::kInvalidNode;
    std::uint64_t spawn_count = 0;
    const char* label = "";  // source tag of the last read, for reports
  };

  /// Entry for reducer `h`, default-initialized on first touch.
  Entry& operator[](ReducerId h) {
    if (h >= entries_.size()) entries_.resize(h + 1);
    return entries_[h];
  }

  bool has(ReducerId h) const {
    return h < entries_.size() && entries_[h].reader != dsu::kInvalidNode;
  }

  void clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace rader::shadow
