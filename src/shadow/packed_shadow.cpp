#include "shadow/packed_shadow.hpp"

#include <cstring>

#include "support/hash.hpp"
#include "support/metrics.hpp"

namespace rader::shadow {

namespace {

constexpr std::uint64_t kAllEmptySlot = ~std::uint64_t{0};

void pages_live_delta(std::int64_t n) {
  if (n != 0) metrics::gauge_add(metrics::Gauge::kShadowPagesLive, n);
}

}  // namespace

// ---- PageArena -------------------------------------------------------------

PackedShadow::Page* PackedShadow::PageArena::alloc() {
  if (free_list != nullptr) {
    Page* page = free_list;
    free_list = page->next_free;
    return page;
  }
  constexpr std::size_t kSlabPages = 16;
  if (slabs.empty() || next_in_slab == kSlabPages) {
    // Default-initialized (not value-initialized): every live field is
    // overwritten before first use, and zeroing 32 KiB x 16 here would
    // double the first-touch cost.
    slabs.emplace_back(new Page[kSlabPages]);
    next_in_slab = 0;
  }
  return &slabs.back()[next_in_slab++];
}

void PackedShadow::PageArena::release(Page* page) {
  page->next_free = free_list;
  free_list = page;
}

// ---- Construction / rule of five -------------------------------------------

PackedShadow::PackedShadow() : arena_(std::make_shared<PageArena>()) {}

void PackedShadow::steal_from(PackedShadow&& other) {
  arena_ = std::move(other.arena_);
  for (std::size_t s = 0; s < kShards; ++s) {
    shards_[s] = std::move(other.shards_[s]);
    other.shards_[s] = Shard{};
  }
  epoch_ = other.epoch_;
  page_count_ = other.page_count_;
  cached_ckey_ = other.cached_ckey_;
  cached_chunk_ = other.cached_chunk_;
  cached_pkey_ = other.cached_pkey_;
  cached_page_ = other.cached_page_;
  wcached_pkey_ = other.wcached_pkey_;
  wcached_slots_ = other.wcached_slots_;
  // The source must count nothing out on destruction.
  other.page_count_ = 0;
  other.epoch_ = 1;
  other.arena_ = std::make_shared<PageArena>();
  other.invalidate_caches();
}

PackedShadow::PackedShadow(PackedShadow&& other) noexcept {
  steal_from(std::move(other));
}

PackedShadow& PackedShadow::operator=(PackedShadow&& other) noexcept {
  if (this != &other) {
    release_directory();
    steal_from(std::move(other));
  }
  return *this;
}

PackedShadow::~PackedShadow() { release_directory(); }

// ---- Directory -------------------------------------------------------------

PackedShadow::Chunk* PackedShadow::find_chunk(std::uintptr_t key) {
  if (key == cached_ckey_) return cached_chunk_;
  const std::uint64_t h = mix64(key);
  Shard& shard = shards_[h & (kShards - 1)];
  if (shard.table.empty()) return nullptr;
  const std::size_t mask = shard.table.size() - 1;
  for (std::size_t i = (h >> kShardBits) & mask;;
       i = (i + 1) & mask) {
    Chunk* chunk = shard.table[i].load(std::memory_order_acquire);
    if (chunk == nullptr) return nullptr;
    if (chunk->key == key) {
      cached_ckey_ = key;
      cached_chunk_ = chunk;
      return chunk;
    }
  }
}

void PackedShadow::shard_insert(Shard& shard, Chunk* chunk) {
  const std::size_t mask = shard.table.size() - 1;
  for (std::size_t i = (mix64(chunk->key) >> kShardBits) & mask;;
       i = (i + 1) & mask) {
    if (shard.table[i].load(std::memory_order_relaxed) == nullptr) {
      // Release publication: a foreign reader that observes the pointer
      // observes the fully initialized chunk behind it.
      shard.table[i].store(chunk, std::memory_order_release);
      return;
    }
  }
}

PackedShadow::Chunk* PackedShadow::ensure_chunk(std::uintptr_t key) {
  if (Chunk* chunk = find_chunk(key)) return chunk;
  const std::uint64_t h = mix64(key);
  Shard& shard = shards_[h & (kShards - 1)];
  if (shard.table.empty() ||
      (shard.count + 1) * 4 > shard.table.size() * 3) {
    // Grow (single writer).  The old table is RETIRED, not freed: a
    // foreign reader probing it mid-resize keeps a valid (if possibly
    // incomplete) view; every chunk it held is re-inserted into the new
    // table before any new chunk is published.
    const std::size_t new_size =
        shard.table.empty() ? 16 : shard.table.size() * 2;
    std::vector<std::atomic<Chunk*>> grown(new_size);
    std::swap(shard.table, grown);
    if (!grown.empty()) {
      for (auto& cell : grown) {
        if (Chunk* c = cell.load(std::memory_order_relaxed)) {
          shard_insert(shard, c);
        }
      }
      shard.retired.push_back(std::move(grown));
    }
  }
  Chunk* chunk = new Chunk();  // value-init: cells all null
  chunk->key = key;
  chunk->refs = 1;
  shard_insert(shard, chunk);
  ++shard.count;
  cached_ckey_ = key;
  cached_chunk_ = chunk;
  return chunk;
}

PackedShadow::Chunk* PackedShadow::unshare_chunk(Chunk* chunk) {
  // The chunk is shared with a fork: clone it so this space's writes
  // stay invisible to the sharers.  Pages are still shared — the clone
  // holds one more chunk-reference to each — and un-share individually
  // on their own first write.
  Chunk* fresh = new Chunk();  // value-init: cells all null
  fresh->key = chunk->key;
  fresh->refs = 1;
  for (std::size_t i = 0; i < kChunkPages; ++i) {
    Page* page = chunk->pages[i].load(std::memory_order_relaxed);
    if (page != nullptr) {
      ++page->refs;  // single-thread contract: space + forks share one
      fresh->pages[i].store(page, std::memory_order_relaxed);
    }
  }
  --chunk->refs;
  // Swap the clone into OUR shard table (the table is per space; the
  // sharers keep the original through their own tables).
  Shard& shard = shards_[mix64(fresh->key) & (kShards - 1)];
  const std::size_t mask = shard.table.size() - 1;
  for (std::size_t i = (mix64(fresh->key) >> kShardBits) & mask;;
       i = (i + 1) & mask) {
    if (shard.table[i].load(std::memory_order_relaxed) == chunk) {
      shard.table[i].store(fresh, std::memory_order_release);
      break;
    }
  }
  cached_ckey_ = fresh->key;
  cached_chunk_ = fresh;
  return fresh;
}

// ---- Slot access -----------------------------------------------------------

std::uint64_t PackedShadow::load_slot(std::uintptr_t g) {
  const std::uintptr_t pkey = page_key(g);
  if (pkey != cached_pkey_) {
    Chunk* chunk = find_chunk(chunk_key(g));
    if (chunk == nullptr) return kAllEmptySlot;
    Page* page = chunk->pages[page_index(g)].load(std::memory_order_acquire);
    if (page == nullptr) return kAllEmptySlot;
    cached_pkey_ = pkey;
    cached_page_ = page;
  }
  // The cached page may have gone stale since it was cached (epoch bump):
  // validate on every hit — a stale page reads as all-empty.
  if (cached_page_->epoch != epoch_) return kAllEmptySlot;
  return cached_page_->slots[slot_index(g)];
}

std::uint64_t* PackedShadow::writable_slot(std::uintptr_t g) {
  const std::uintptr_t pkey = page_key(g);
  if (pkey == wcached_pkey_) return &wcached_slots_[slot_index(g)];
  Chunk* chunk = ensure_chunk(chunk_key(g));
  if (chunk->refs > 1) chunk = unshare_chunk(chunk);
  std::atomic<Page*>& cell = chunk->pages[page_index(g)];
  Page* page = cell.load(std::memory_order_relaxed);  // owner thread
  if (page == nullptr) {
    page = arena_->alloc();
    std::memset(page->slots, 0xff, sizeof page->slots);  // all empty
    page->epoch = epoch_;
    page->refs = 1;
    cell.store(page, std::memory_order_release);
    ++page_count_;
    metrics::bump(metrics::Counter::kShadowPagesTouched);
    pages_live_delta(1);
  } else if (page->refs > 1) {
    // Referenced by a sharer's chunk too: un-share before mutating.  A
    // stale shared page needs no copy — its contents read as empty on
    // both sides — just a fresh reset page.
    Page* fresh = arena_->alloc();
    if (page->epoch == epoch_) {
      std::memcpy(fresh->slots, page->slots, sizeof fresh->slots);
      metrics::bump(metrics::Counter::kShadowPagesCoW);
    } else {
      std::memset(fresh->slots, 0xff, sizeof fresh->slots);
      metrics::bump(metrics::Counter::kShadowPageResets);
    }
    fresh->epoch = epoch_;
    fresh->refs = 1;
    --page->refs;
    cell.store(fresh, std::memory_order_release);
    page = fresh;
    // page_count_ and the gauge are unchanged: one reference was swapped
    // for another.
  } else if (page->epoch != epoch_) {
    // Exclusive but stale: lazy reset in place, re-stamped to the current
    // epoch (epochs only grow, so the page can never revalidate old data).
    std::memset(page->slots, 0xff, sizeof page->slots);
    page->epoch = epoch_;
    metrics::bump(metrics::Counter::kShadowPageResets);
  }
  // Keep the read cache coherent: it may point at a page this space just
  // replaced or reset.
  cached_pkey_ = pkey;
  cached_page_ = page;
  wcached_pkey_ = pkey;
  wcached_slots_ = page->slots;
  return &page->slots[slot_index(g)];
}

void PackedShadow::clear_granule(std::uintptr_t g) {
  if (page_key(g) != wcached_pkey_) {
    // Absent or stale pages already read as empty: do not materialize a
    // page just to store emptiness into it.
    Chunk* chunk = find_chunk(chunk_key(g));
    if (chunk == nullptr) return;
    Page* page = chunk->pages[page_index(g)].load(std::memory_order_relaxed);
    if (page == nullptr || page->epoch != epoch_) return;
  }
  *writable_slot(g) = kAllEmptySlot;
}

// ---- Bulk operations -------------------------------------------------------

void PackedShadow::clear() {
  if (epoch_ == ~std::uint64_t{0}) {
    // Epoch exhaustion (2^64 - 1 clears, or a test jumping the counter):
    // degrade to one legacy-style full release and restart the epochs.
    release_directory();
    epoch_ = 1;
  } else {
    ++epoch_;
    metrics::bump(metrics::Counter::kShadowEpochClears);
  }
  invalidate_caches();
}

void PackedShadow::set_epoch_for_testing(std::uint64_t epoch) {
  RADER_CHECK_MSG(epoch >= epoch_, "epochs only grow");
  epoch_ = epoch;
  invalidate_caches();
}

PackedShadow PackedShadow::fork() const {
  // The fork starts with no proven-exclusive chunk or page, and neither
  // do we: our write cache may hold a page the fork now shares.
  wcached_pkey_ = kNoKey;
  wcached_slots_ = nullptr;
  PackedShadow f;
  f.arena_ = arena_;
  f.epoch_ = epoch_;
  f.page_count_ = page_count_;
  for (std::size_t s = 0; s < kShards; ++s) {
    const Shard& mine = shards_[s];
    if (mine.table.empty()) continue;
    Shard& theirs = f.shards_[s];
    theirs.table = std::vector<std::atomic<Chunk*>>(mine.table.size());
    theirs.count = mine.count;
    for (std::size_t i = 0; i < mine.table.size(); ++i) {
      Chunk* chunk = mine.table[i].load(std::memory_order_relaxed);
      if (chunk != nullptr) {
        ++chunk->refs;  // single-thread contract: space + forks share one
        theirs.table[i].store(chunk, std::memory_order_release);
      }
    }
  }
  // The fork holds its own reference to every shared page (through the
  // shared chunks): the gauge counts mapped pages once per holder, like
  // the legacy space.
  pages_live_delta(static_cast<std::int64_t>(f.page_count_));
  return f;
}

void PackedShadow::release_directory() {
  for (std::size_t s = 0; s < kShards; ++s) {
    for (auto& cell : shards_[s].table) {
      Chunk* chunk = cell.load(std::memory_order_relaxed);
      if (chunk == nullptr) continue;
      if (--chunk->refs == 0) {
        for (std::size_t i = 0; i < kChunkPages; ++i) {
          Page* page = chunk->pages[i].load(std::memory_order_relaxed);
          if (page != nullptr && --page->refs == 0) arena_->release(page);
        }
        delete chunk;
      }
    }
    shards_[s] = Shard{};
  }
  pages_live_delta(-static_cast<std::int64_t>(page_count_));
  page_count_ = 0;
  invalidate_caches();
}

void PackedShadow::invalidate_caches() {
  cached_ckey_ = kNoKey;
  cached_chunk_ = nullptr;
  cached_pkey_ = kNoKey;
  cached_page_ = nullptr;
  wcached_pkey_ = kNoKey;
  wcached_slots_ = nullptr;
}

}  // namespace rader::shadow
