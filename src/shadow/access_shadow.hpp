// Reader/writer shadow facade over the two slot encodings.
//
// The detectors used to own a PAIR of shadow::ShadowSpace instances
// (reader + writer).  AccessShadow keeps that logical interface — two
// uint32 payload maps with kEmpty sentinels — but routes it to one of:
//
//  * SlotEncoding::kPacked — a single PackedShadow whose 64-bit slots
//    hold both fields plus the access extent (packed_shadow.hpp).  The
//    production default: one lookup per granule instead of two, array-
//    indexed chunk pages instead of hash probes, O(1) epoch clear.
//  * SlotEncoding::kLegacy — the original pair of ShadowSpaces, kept
//    alive as the reference implementation the shadow-equivalence
//    battery (tests/shadow/shadow_equivalence_test.cpp) diffs against.
//
// Both encodings normalize "no payload" to kEmpty = uint32(-1), so
// detector comparisons (and therefore race reports) are identical by
// construction; the battery proves it byte-for-byte on random programs.
//
// The extent offsets are recorded only by the packed backend (the legacy
// slots have no room); callers must treat them as diagnostics, never as
// report inputs — see the granularity regression tests.
#pragma once

#include <cstdint>

#include "shadow/packed_shadow.hpp"
#include "shadow/shadow_space.hpp"

namespace rader::shadow {

enum class SlotEncoding : int {
  kPacked = 0,  // production: combined 8-byte slots
  kLegacy = 1,  // reference: paired ShadowSpaces
};

/// Process-wide default used by AccessShadow's default constructor.
/// Set by tests/benches before constructing detectors; detectors built
/// concurrently with a change may see either value (atomic, relaxed).
SlotEncoding default_encoding();
void set_default_encoding(SlotEncoding encoding);

/// Two logical payload maps (reader + writer) behind one interface.
/// Same single-thread ownership contract as the backends: a facade and
/// its forks stay on one thread.
class AccessShadow {
 public:
  using Payload = std::uint32_t;
  static constexpr Payload kEmpty = static_cast<Payload>(-1);
  /// Largest id storable under EITHER encoding (the packed field is the
  /// binding constraint).
  static constexpr Payload kMaxPayload = PackedShadow::kMaxPayload;

  AccessShadow() : AccessShadow(default_encoding()) {}
  explicit AccessShadow(SlotEncoding encoding) : enc_(encoding) {}
  AccessShadow(const AccessShadow&) = delete;
  AccessShadow& operator=(const AccessShadow&) = delete;
  AccessShadow(AccessShadow&&) noexcept = default;
  AccessShadow& operator=(AccessShadow&&) noexcept = default;

  SlotEncoding encoding() const { return enc_; }

  Payload reader(std::uintptr_t g) {
    return enc_ == SlotEncoding::kPacked ? packed_.reader(g)
                                         : legacy_reader_.get(g);
  }
  Payload writer(std::uintptr_t g) {
    return enc_ == SlotEncoding::kPacked ? packed_.writer(g)
                                         : legacy_writer_.get(g);
  }

  /// `offset` is the first byte of the access within granule `g`;
  /// recorded (clamped) by the packed backend, ignored by the legacy one.
  void set_reader(std::uintptr_t g, Payload v, unsigned offset = 0) {
    if (enc_ == SlotEncoding::kPacked) {
      packed_.set_reader(g, v, offset);
    } else {
      legacy_reader_.set(g, v);
    }
  }
  void set_writer(std::uintptr_t g, Payload v, unsigned offset = 0) {
    if (enc_ == SlotEncoding::kPacked) {
      packed_.set_writer(g, v, offset);
    } else {
      legacy_writer_.set(g, v);
    }
  }

  /// Recorded extents (packed backend only; 0 under kLegacy).
  unsigned reader_offset(std::uintptr_t g) {
    return enc_ == SlotEncoding::kPacked ? packed_.reader_offset(g) : 0;
  }
  unsigned writer_offset(std::uintptr_t g) {
    return enc_ == SlotEncoding::kPacked ? packed_.writer_offset(g) : 0;
  }

  /// Reset both fields of one granule (the detectors' on_clear path).
  void clear_granule(std::uintptr_t g) {
    if (enc_ == SlotEncoding::kPacked) {
      packed_.clear_granule(g);
    } else {
      legacy_reader_.set(g, kEmpty);
      legacy_writer_.set(g, kEmpty);
    }
  }

  /// Bulk clear: O(1) under kPacked (epoch bump), page walk under kLegacy.
  void clear() {
    if (enc_ == SlotEncoding::kPacked) {
      packed_.clear();
    } else {
      legacy_reader_.clear();
      legacy_writer_.clear();
    }
  }

  /// Copy-on-write snapshot (both encodings share pages with the source).
  AccessShadow fork() const;

  /// Shadow pages referenced by this facade (both backends' accounting).
  std::size_t page_count() const {
    return enc_ == SlotEncoding::kPacked
               ? packed_.page_count()
               : legacy_reader_.page_count() + legacy_writer_.page_count();
  }

  /// Packed backend escape hatch for epoch/geometry tests.
  PackedShadow& packed_for_testing() { return packed_; }

 private:
  SlotEncoding enc_;
  PackedShadow packed_;
  ShadowSpace legacy_reader_;
  ShadowSpace legacy_writer_;
};

}  // namespace rader::shadow
