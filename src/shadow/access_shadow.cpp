#include "shadow/access_shadow.hpp"

#include <atomic>

namespace rader::shadow {

namespace {
std::atomic<int> g_default_encoding{static_cast<int>(SlotEncoding::kPacked)};
}  // namespace

SlotEncoding default_encoding() {
  return static_cast<SlotEncoding>(
      g_default_encoding.load(std::memory_order_relaxed));
}

void set_default_encoding(SlotEncoding encoding) {
  g_default_encoding.store(static_cast<int>(encoding),
                           std::memory_order_relaxed);
}

AccessShadow AccessShadow::fork() const {
  AccessShadow f(enc_);
  if (enc_ == SlotEncoding::kPacked) {
    f.packed_ = packed_.fork();
  } else {
    f.legacy_reader_ = legacy_reader_.fork();
    f.legacy_writer_ = legacy_writer_.fork();
  }
  return f;
}

}  // namespace rader::shadow
