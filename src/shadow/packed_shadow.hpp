// Production-footprint shadow memory: the packed-slot backend.
//
// shadow::ShadowSpace (shadow_space.hpp) is tuned for litmus-sized
// programs: an unordered_map page index, one uint32 payload per granule,
// and a clear() that walks and frees every page.  The detectors pair two
// of them (reader + writer), so every access pays two hash-map lookups
// once it leaves the one-page lookaside — the dominant cost on multi-MB
// footprints (bench/large_footprint).  PackedShadow is the production
// replacement:
//
//  * COMBINED SLOT ENCODING — reader and writer live in ONE 64-bit slot:
//      bits [ 0,28)  reader id   (28-bit field, all-ones = empty)
//      bits [28,56)  writer id   (28-bit field, all-ones = empty)
//      bits [56,60)  reader offset: first byte of the recorded access
//                    within its granule, clamped to 15
//      bits [60,64)  writer offset, same clamp
//    One lookup serves both spaces, and memset(0xFF) still initializes
//    every field to empty, exactly like the legacy pages.  Detector
//    payloads (disjoint-set nodes / strand refs) must fit 28 bits —
//    2^28-1 ids, ~16x beyond anything the engines mint — enforced by
//    RADER_CHECK on every store.
//
//  * SHARDED TWO-LEVEL DIRECTORY WITH LOCK-FREE LOOKUP — granule space is
//    covered by chunks of 512 pages x 4096 slots (2^21 granules per
//    chunk).  Chunk pointers live in kShards open-addressed hash tables;
//    a single writer (the owning thread) publishes new chunks and pages
//    with release stores, so concurrent readers on other threads (the
//    parallel engine's per-worker spaces, future shared-space modes)
//    locate any published slot with acquire loads and zero locking.
//    Within a chunk, page lookup is an array index — no hashing — which
//    is where the multi-MB speedup over the unordered_map comes from.
//
//  * EPOCH-TAGGED BULK CLEAR — clear() increments the space's epoch and
//    returns: O(1) instead of a page walk (shadow.epoch_clears).  Pages
//    carry the epoch they were last reset under; a page whose epoch is
//    stale reads as all-empty and is lazily memset + re-stamped on its
//    first write (shadow.page_resets).  Epochs only grow per space, and
//    a written page is always re-stamped to the CURRENT epoch, so a
//    stale page can never spuriously revalidate.  On (unlikely) epoch
//    exhaustion clear() degrades to one legacy-style full release.
//
//  * ARENA-BACKED PAGE POOL WITH TWO-LEVEL CoW FORKS — pages come from a
//    PageArena shared (shared_ptr) between a space and its forks, with an
//    intrusive free list so epoch-cleared footprints recycle without
//    malloc churn.  Sharing is copy-on-write at BOTH directory levels:
//    fork() copies only the shard tables and bumps each CHUNK's refcount
//    — O(#chunks), a few hundred nanoseconds for a multi-MB footprint,
//    where the legacy space copies an unordered_map node per page.  The
//    first write through a shared chunk clones the chunk (bumping its
//    pages' refcounts), and the first write to a shared page un-shares
//    the page (shadow.pages_cow).  Page refcounts count referencing
//    CHUNKS; chunk refcounts count referencing SPACES.  This is what
//    makes the prefix sweep's per-spec checkpoint forks cheap even when
//    the checkpoint shadows millions of granules.  Like the legacy
//    space, a space and its forks must stay on one thread (refcounts and
//    the arena are intentionally non-atomic); the lock-free guarantees
//    above cover foreign READERS only.
//
// Gauge conservation (shadow.pages_live) matches the legacy contract:
// every directory reference counts in once (allocation or fork) and out
// once (release, full reset, destruction).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/common.hpp"

namespace rader::shadow {

/// Paged granule -> packed (reader, writer, offsets) map; see file header.
class PackedShadow {
 public:
  using Payload = std::uint32_t;
  /// Facade-level empty sentinel, identical to ShadowSpace::kEmpty.
  static constexpr Payload kEmpty = static_cast<Payload>(-1);
  /// In-slot empty field (28 ones) and the largest storable id.
  static constexpr Payload kFieldEmpty = (Payload{1} << 28) - 1;
  static constexpr Payload kMaxPayload = kFieldEmpty - 1;
  static constexpr unsigned kMaxOffset = 15;  // 4-bit extent field

  PackedShadow();
  PackedShadow(const PackedShadow&) = delete;
  PackedShadow& operator=(const PackedShadow&) = delete;
  PackedShadow(PackedShadow&& other) noexcept;
  PackedShadow& operator=(PackedShadow&& other) noexcept;
  ~PackedShadow();

  /// Reader / writer id recorded for granule `g`, or kEmpty.
  Payload reader(std::uintptr_t g) {
    const std::uint64_t slot = load_slot(g);
    const Payload field = static_cast<Payload>(slot & kFieldEmpty);
    return field == kFieldEmpty ? kEmpty : field;
  }
  Payload writer(std::uintptr_t g) {
    const std::uint64_t slot = load_slot(g);
    const Payload field = static_cast<Payload>((slot >> 28) & kFieldEmpty);
    return field == kFieldEmpty ? kEmpty : field;
  }

  /// Recorded access extent: first byte of the recorded access within
  /// granule `g`, clamped to kMaxOffset (meaningless when the id is
  /// empty).  Diagnostic only — race reports derive addresses from the
  /// CURRENT access, never from this field (tests/core/granularity_test).
  unsigned reader_offset(std::uintptr_t g) {
    return static_cast<unsigned>((load_slot(g) >> 56) & 0xF);
  }
  unsigned writer_offset(std::uintptr_t g) {
    return static_cast<unsigned>((load_slot(g) >> 60) & 0xF);
  }

  /// Record reader/writer `v` for granule `g` with the access's byte
  /// offset within the granule (clamped to the 4-bit extent field).
  void set_reader(std::uintptr_t g, Payload v, unsigned offset = 0) {
    std::uint64_t& slot = *writable_slot(g);
    slot = (slot & ~((std::uint64_t{kFieldEmpty}) | (std::uint64_t{0xF} << 56)))
           | encode_field(v)
           | (std::uint64_t{clamp_offset(offset)} << 56);
  }
  void set_writer(std::uintptr_t g, Payload v, unsigned offset = 0) {
    std::uint64_t& slot = *writable_slot(g);
    slot = (slot &
            ~((std::uint64_t{kFieldEmpty} << 28) | (std::uint64_t{0xF} << 60)))
           | (encode_field(v) << 28)
           | (std::uint64_t{clamp_offset(offset)} << 60);
  }

  /// Reset both fields of one granule to empty (the on_clear path).
  void clear_granule(std::uintptr_t g);

  /// O(1) bulk clear: bump the epoch; stale pages read empty and reset
  /// lazily.  Degrades to a full release on epoch exhaustion.
  void clear();

  /// Copy-on-write snapshot sharing every current chunk and page (and
  /// the arena).  O(#chunks): only the shard tables are copied.
  PackedShadow fork() const;

  /// Directory pages currently referenced by THIS space (stale-epoch
  /// pages still count: they are mapped until released or reset).
  std::size_t page_count() const { return page_count_; }

  /// Bytes of shadow slot storage currently referenced by this space.
  std::size_t bytes() const { return page_count_ * sizeof(Page); }

  /// Current epoch (tests).
  std::uint64_t epoch() const { return epoch_; }

  /// Jump the epoch counter near its limit so tests can exercise the
  /// rollover path without 2^64 clears.  Must be >= the current epoch.
  void set_epoch_for_testing(std::uint64_t epoch);

  // Geometry (shared with the facade and the benches).
  static constexpr unsigned kSlotBits = 12;  // 4096 slots per page
  static constexpr std::size_t kPageSlots = std::size_t{1} << kSlotBits;
  static constexpr unsigned kChunkBits = 9;  // 512 pages per chunk
  static constexpr std::size_t kChunkPages = std::size_t{1} << kChunkBits;

 private:
  struct Page {
    std::uint64_t epoch;  // epoch this page was last reset under
    std::uint32_t refs;   // referencing CHUNKS (mine + shared forks')
    Page* next_free;      // arena free-list link (only while free)
    std::uint64_t slots[kPageSlots];
  };

  /// Second directory level: page pointers for one aligned group of
  /// kChunkPages pages.  The array entries are published with release
  /// stores so foreign readers can traverse concurrently; the chunk's
  /// key is immutable after publication.  Chunks are shared CoW between
  /// a space and its forks (`refs` counts owning spaces): only an
  /// exclusive chunk's cells may be mutated — a shared chunk is cloned
  /// first (unshare_chunk).
  struct Chunk {
    std::uintptr_t key;
    std::uint32_t refs;  // referencing SPACES (this one + sharing forks)
    std::atomic<Page*> pages[kChunkPages];
  };

  /// One shard of the chunk directory: a power-of-two open-addressed
  /// table of chunk pointers.  Lookup is lock-free (acquire loads);
  /// insertion is single-writer (the owning thread).  Grown tables are
  /// retired, not freed, so readers racing a resize stay safe.
  struct Shard {
    std::vector<std::atomic<Chunk*>> table;
    std::size_t count = 0;
    std::vector<std::vector<std::atomic<Chunk*>>> retired;
  };

  /// Pool of pages shared by a space and all its forks (single thread).
  struct PageArena {
    std::vector<std::unique_ptr<Page[]>> slabs;
    Page* free_list = nullptr;
    std::size_t next_in_slab = 0;
    Page* alloc();
    void release(Page* page);
  };

  static constexpr unsigned kShardBits = 3;  // 8 shards
  static constexpr std::size_t kShards = std::size_t{1} << kShardBits;
  static constexpr std::uintptr_t kNoKey = static_cast<std::uintptr_t>(-1);

  static std::uintptr_t page_key(std::uintptr_t g) { return g >> kSlotBits; }
  static std::uintptr_t chunk_key(std::uintptr_t g) {
    return g >> (kSlotBits + kChunkBits);
  }
  static std::size_t slot_index(std::uintptr_t g) {
    return g & (kPageSlots - 1);
  }
  static std::size_t page_index(std::uintptr_t g) {
    return page_key(g) & (kChunkPages - 1);
  }
  static std::uint64_t encode_field(Payload v) {
    if (v == kEmpty) return kFieldEmpty;
    RADER_CHECK_MSG(v <= kMaxPayload,
                    "packed shadow payload exceeds the 28-bit slot field");
    return v;
  }
  static unsigned clamp_offset(unsigned offset) {
    return offset > kMaxOffset ? kMaxOffset : offset;
  }

  /// Slot value for `g`, or an all-empty slot when no current-epoch page
  /// covers it.  Never allocates.
  std::uint64_t load_slot(std::uintptr_t g);

  /// Exclusive current-epoch slot for `g`, allocating / un-sharing /
  /// resetting the page as needed.
  std::uint64_t* writable_slot(std::uintptr_t g);

  Chunk* find_chunk(std::uintptr_t key);
  Chunk* ensure_chunk(std::uintptr_t key);
  /// Clone a fork-shared chunk so its cells become mutable; replaces it
  /// in this space's shard table and returns the exclusive clone.
  Chunk* unshare_chunk(Chunk* chunk);
  void shard_insert(Shard& shard, Chunk* chunk);
  /// Drop every chunk reference (releasing chunks and pages that hit
  /// refcount zero) and empty the shard tables.
  void release_directory();
  void invalidate_caches();
  void steal_from(PackedShadow&& other);

  std::shared_ptr<PageArena> arena_;
  Shard shards_[kShards];  // tables are per space; chunks are shared CoW
  std::uint64_t epoch_ = 1;
  std::size_t page_count_ = 0;

  // Lookasides.  The read page cache may hold a stale-epoch page (checked
  // on use); the write cache only ever holds a page PROVEN exclusive and
  // current-epoch — a write through a stale pointer would leak into forks
  // or resurrect cleared state.  fork() drops the write cache (mutable,
  // const source), exactly like the legacy space.
  std::uintptr_t cached_ckey_ = kNoKey;
  Chunk* cached_chunk_ = nullptr;
  std::uintptr_t cached_pkey_ = kNoKey;
  Page* cached_page_ = nullptr;
  mutable std::uintptr_t wcached_pkey_ = kNoKey;
  mutable std::uint64_t* wcached_slots_ = nullptr;
};

}  // namespace rader::shadow
