// Shadow memory spaces.
//
// The SP-bags and SP+ algorithms maintain "two shadow spaces of shared
// memory, called reader and writer.  Each shadow space contains an entry for
// each memory location that the computation accesses" storing the ID of the
// function instantiation that last read / wrote that location.
//
// This implementation is a two-level paged map from byte addresses to a
// 32-bit payload (the detectors store disjoint-set node handles).  Pages are
// allocated lazily on first touch; a one-page lookaside cache makes the
// common sequential-access pattern a single indexed load.
//
// Granularity: one entry per byte, matching the precision of the compiler
// instrumentation the paper piggybacks on (ThreadSanitizer tracks accesses
// with byte-accurate extents).  Range helpers iterate the bytes of an access.
//
// Forking: `fork()` produces a copy-on-write snapshot — both spaces share
// every current page and a page is copied only when one side first writes
// it after the fork.  This is what makes detector checkpoints cheap enough
// to take per continuation point (the prefix-sharing sweep strategy,
// core/sweep.hpp).  A space and its forks must stay on one thread; the
// sharing is use_count-based, not atomic-publication-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "support/common.hpp"

namespace rader::shadow {

/// Paged address → uint32 payload map with an "empty" sentinel.
class ShadowSpace {
 public:
  using Payload = std::uint32_t;
  static constexpr Payload kEmpty = static_cast<Payload>(-1);

  ShadowSpace() = default;

  // Shadow spaces are large; forbid accidental copies (fork() is the
  // explicit, copy-on-write way to duplicate one).  Moves and destruction
  // are spelled out so the shadow.pages_live gauge stays conserved: every
  // page reference a space holds was counted in (allocation or fork) and
  // must be counted out exactly once (clear, move-assign-over, destroy).
  ShadowSpace(const ShadowSpace&) = delete;
  ShadowSpace& operator=(const ShadowSpace&) = delete;
  ShadowSpace(ShadowSpace&& other) noexcept;
  ShadowSpace& operator=(ShadowSpace&& other) noexcept;
  ~ShadowSpace();

  /// Payload recorded for `addr`, or kEmpty if never set.
  Payload get(std::uintptr_t addr) {
    const Page* page = find_page(addr);
    return page ? page->cells[offset_in_page(addr)] : kEmpty;
  }

  /// Record `value` for `addr`.
  void set(std::uintptr_t addr, Payload value) {
    writable_page(addr)->cells[offset_in_page(addr)] = value;
  }

  /// Copy-on-write snapshot: the fork shares every current page with this
  /// space; whichever side writes a shared page first copies it (bumping
  /// metrics::Counter::kShadowPagesCoW).  Read caches stay valid on both
  /// sides (shared pages are immutable until un-shared); the write cache is
  /// dropped so the next write re-checks sharing.
  ShadowSpace fork() const;

  /// Number of lazily allocated pages (for tests and space accounting).
  std::size_t page_count() const { return pages_.size(); }

  /// Bytes of shadow currently allocated.
  std::size_t bytes() const { return pages_.size() * sizeof(Page); }

  /// Forget everything (keeps allocated capacity in the page index).
  void clear();

 private:
  static constexpr int kPageBits = 12;  // 4 KiB of address space per page
  static constexpr std::size_t kPageSize = std::size_t{1} << kPageBits;

  struct Page {
    Payload cells[kPageSize];
  };

  static std::uintptr_t page_key(std::uintptr_t addr) {
    return addr >> kPageBits;
  }
  static std::size_t offset_in_page(std::uintptr_t addr) {
    return addr & (kPageSize - 1);
  }

  const Page* find_page(std::uintptr_t addr);
  Page* writable_page(std::uintptr_t addr);

  static constexpr std::uintptr_t kNoKey = static_cast<std::uintptr_t>(-1);

  std::unordered_map<std::uintptr_t, std::shared_ptr<Page>> pages_;
  // Read lookaside: last page located (possibly still shared with a fork).
  std::uintptr_t cached_key_ = kNoKey;
  const Page* cached_page_ = nullptr;
  // Write lookaside: last page PROVEN exclusively owned.  Kept separate from
  // the read cache (and mutable, so fork() can drop it on a const source):
  // a write through a stale cached pointer into a shared page would leak the
  // mutation into every fork sharing it.
  mutable std::uintptr_t wcached_key_ = kNoKey;
  mutable Page* wcached_page_ = nullptr;
};

}  // namespace rader::shadow
