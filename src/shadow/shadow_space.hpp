// Shadow memory spaces.
//
// The SP-bags and SP+ algorithms maintain "two shadow spaces of shared
// memory, called reader and writer.  Each shadow space contains an entry for
// each memory location that the computation accesses" storing the ID of the
// function instantiation that last read / wrote that location.
//
// This implementation is a two-level paged map from byte addresses to a
// 32-bit payload (the detectors store disjoint-set node handles).  Pages are
// allocated lazily on first touch; a one-page lookaside cache makes the
// common sequential-access pattern a single indexed load.
//
// Granularity: one entry per byte, matching the precision of the compiler
// instrumentation the paper piggybacks on (ThreadSanitizer tracks accesses
// with byte-accurate extents).  Range helpers iterate the bytes of an access.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "support/common.hpp"

namespace rader::shadow {

/// Paged address → uint32 payload map with an "empty" sentinel.
class ShadowSpace {
 public:
  using Payload = std::uint32_t;
  static constexpr Payload kEmpty = static_cast<Payload>(-1);

  ShadowSpace() = default;

  // Shadow spaces are large; forbid accidental copies.
  ShadowSpace(const ShadowSpace&) = delete;
  ShadowSpace& operator=(const ShadowSpace&) = delete;

  /// Payload recorded for `addr`, or kEmpty if never set.
  Payload get(std::uintptr_t addr) {
    Page* page = find_page(addr);
    return page ? page->cells[offset_in_page(addr)] : kEmpty;
  }

  /// Record `value` for `addr`.
  void set(std::uintptr_t addr, Payload value) {
    touch_page(addr)->cells[offset_in_page(addr)] = value;
  }

  /// Number of lazily allocated pages (for tests and space accounting).
  std::size_t page_count() const { return pages_.size(); }

  /// Bytes of shadow currently allocated.
  std::size_t bytes() const { return pages_.size() * sizeof(Page); }

  /// Forget everything (keeps allocated capacity in the page index).
  void clear();

 private:
  static constexpr int kPageBits = 12;  // 4 KiB of address space per page
  static constexpr std::size_t kPageSize = std::size_t{1} << kPageBits;

  struct Page {
    Payload cells[kPageSize];
  };

  static std::uintptr_t page_key(std::uintptr_t addr) {
    return addr >> kPageBits;
  }
  static std::size_t offset_in_page(std::uintptr_t addr) {
    return addr & (kPageSize - 1);
  }

  Page* find_page(std::uintptr_t addr);
  Page* touch_page(std::uintptr_t addr);

  std::unordered_map<std::uintptr_t, std::unique_ptr<Page>> pages_;
  // Lookaside cache: last page touched.
  std::uintptr_t cached_key_ = static_cast<std::uintptr_t>(-1);
  Page* cached_page_ = nullptr;
};

}  // namespace rader::shadow
