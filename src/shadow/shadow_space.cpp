#include "shadow/shadow_space.hpp"

#include <cstring>

#include "support/metrics.hpp"

namespace rader::shadow {

const ShadowSpace::Page* ShadowSpace::find_page(std::uintptr_t addr) {
  const std::uintptr_t key = page_key(addr);
  if (key == cached_key_) return cached_page_;
  auto it = pages_.find(key);
  if (it == pages_.end()) return nullptr;
  cached_key_ = key;
  cached_page_ = it->second.get();
  return cached_page_;
}

ShadowSpace::Page* ShadowSpace::writable_page(std::uintptr_t addr) {
  const std::uintptr_t key = page_key(addr);
  if (key == wcached_key_) return wcached_page_;
  auto it = pages_.find(key);
  if (it == pages_.end()) {
    metrics::bump(metrics::Counter::kShadowPagesTouched);
    auto page = std::make_shared<Page>();
    std::memset(page->cells, 0xff, sizeof(page->cells));  // all kEmpty
    it = pages_.emplace(key, std::move(page)).first;
  } else if (it->second.use_count() > 1) {
    // The page is shared with a fork: un-share before mutating.
    metrics::bump(metrics::Counter::kShadowPagesCoW);
    it->second = std::make_shared<Page>(*it->second);
  }
  Page* raw = it->second.get();
  // Keep the read cache coherent: it may point at the shared page this
  // space just replaced.
  cached_key_ = key;
  cached_page_ = raw;
  wcached_key_ = key;
  wcached_page_ = raw;
  return raw;
}

void ShadowSpace::clear() {
  pages_.clear();
  cached_key_ = kNoKey;
  cached_page_ = nullptr;
  wcached_key_ = kNoKey;
  wcached_page_ = nullptr;
}

}  // namespace rader::shadow
