#include "shadow/shadow_space.hpp"

#include <cstring>

#include "support/metrics.hpp"

namespace rader::shadow {

ShadowSpace::Page* ShadowSpace::find_page(std::uintptr_t addr) {
  const std::uintptr_t key = page_key(addr);
  if (key == cached_key_) return cached_page_;
  auto it = pages_.find(key);
  if (it == pages_.end()) return nullptr;
  cached_key_ = key;
  cached_page_ = it->second.get();
  return cached_page_;
}

ShadowSpace::Page* ShadowSpace::touch_page(std::uintptr_t addr) {
  if (Page* page = find_page(addr)) return page;
  metrics::bump(metrics::Counter::kShadowPagesTouched);
  const std::uintptr_t key = page_key(addr);
  auto page = std::make_unique<Page>();
  std::memset(page->cells, 0xff, sizeof(page->cells));  // all kEmpty
  Page* raw = page.get();
  pages_.emplace(key, std::move(page));
  cached_key_ = key;
  cached_page_ = raw;
  return raw;
}

void ShadowSpace::clear() {
  pages_.clear();
  cached_key_ = static_cast<std::uintptr_t>(-1);
  cached_page_ = nullptr;
}

}  // namespace rader::shadow
