#include "shadow/shadow_space.hpp"

#include <cstring>

#include "support/metrics.hpp"

namespace rader::shadow {

namespace {

void pages_live_delta(std::int64_t n) {
  if (n != 0) metrics::gauge_add(metrics::Gauge::kShadowPagesLive, n);
}

}  // namespace

ShadowSpace::ShadowSpace(ShadowSpace&& other) noexcept
    : pages_(std::move(other.pages_)),
      cached_key_(other.cached_key_),
      cached_page_(other.cached_page_),
      wcached_key_(other.wcached_key_),
      wcached_page_(other.wcached_page_) {
  // A moved-from map's contents are unspecified; force it empty so the
  // source's destructor counts nothing out.
  other.pages_.clear();
  other.cached_key_ = kNoKey;
  other.cached_page_ = nullptr;
  other.wcached_key_ = kNoKey;
  other.wcached_page_ = nullptr;
}

ShadowSpace& ShadowSpace::operator=(ShadowSpace&& other) noexcept {
  if (this != &other) {
    pages_live_delta(-static_cast<std::int64_t>(pages_.size()));
    pages_ = std::move(other.pages_);
    cached_key_ = other.cached_key_;
    cached_page_ = other.cached_page_;
    wcached_key_ = other.wcached_key_;
    wcached_page_ = other.wcached_page_;
    other.pages_.clear();
    other.cached_key_ = kNoKey;
    other.cached_page_ = nullptr;
    other.wcached_key_ = kNoKey;
    other.wcached_page_ = nullptr;
  }
  return *this;
}

ShadowSpace::~ShadowSpace() {
  pages_live_delta(-static_cast<std::int64_t>(pages_.size()));
}

ShadowSpace ShadowSpace::fork() const {
  wcached_key_ = kNoKey;
  wcached_page_ = nullptr;
  ShadowSpace f;
  f.pages_ = pages_;
  // The fork holds its own reference to every shared page: the gauge
  // counts mapped pages across live spaces, so shared pages count once
  // per holder (each holder will also count them out once).
  pages_live_delta(static_cast<std::int64_t>(f.pages_.size()));
  return f;
}

const ShadowSpace::Page* ShadowSpace::find_page(std::uintptr_t addr) {
  const std::uintptr_t key = page_key(addr);
  if (key == cached_key_) return cached_page_;
  auto it = pages_.find(key);
  if (it == pages_.end()) return nullptr;
  cached_key_ = key;
  cached_page_ = it->second.get();
  return cached_page_;
}

ShadowSpace::Page* ShadowSpace::writable_page(std::uintptr_t addr) {
  const std::uintptr_t key = page_key(addr);
  if (key == wcached_key_) return wcached_page_;
  auto it = pages_.find(key);
  if (it == pages_.end()) {
    metrics::bump(metrics::Counter::kShadowPagesTouched);
    metrics::gauge_add(metrics::Gauge::kShadowPagesLive, 1);
    auto page = std::make_shared<Page>();
    std::memset(page->cells, 0xff, sizeof(page->cells));  // all kEmpty
    it = pages_.emplace(key, std::move(page)).first;
  } else if (it->second.use_count() > 1) {
    // The page is shared with a fork: un-share before mutating.
    metrics::bump(metrics::Counter::kShadowPagesCoW);
    it->second = std::make_shared<Page>(*it->second);
  }
  Page* raw = it->second.get();
  // Keep the read cache coherent: it may point at the shared page this
  // space just replaced.
  cached_key_ = key;
  cached_page_ = raw;
  wcached_key_ = key;
  wcached_page_ = raw;
  return raw;
}

void ShadowSpace::clear() {
  pages_live_delta(-static_cast<std::int64_t>(pages_.size()));
  pages_.clear();
  cached_key_ = kNoKey;
  cached_page_ = nullptr;
  wcached_key_ = kNoKey;
  wcached_page_ = nullptr;
}

}  // namespace rader::shadow
