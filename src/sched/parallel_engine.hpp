// ParallelEngine: a work-stealing runtime for real parallel execution.
//
// This is the substrate the paper's benchmarks presume — a Cilk-style
// work-stealing scheduler with reducer support.  The calling thread becomes
// worker 0 and executes the root; helper threads steal from Chase–Lev
// deques.  Scheduling is CHILD-stealing (a spawned task is pushed and the
// continuation keeps running): continuation stealing requires compiler
// support that a library cannot express.
//
// Reducer determinism under child stealing is achieved with ordered view
// segments rather than Cilk's steal-lazy hypermaps (see DESIGN.md §2): each
// frame keeps, in serial order, one join item per spawn — the child's
// folded view map plus the continuation segment that follows it — and the
// sync folds them left-to-right with the monoid's reduce.  Because the fold
// order is positional, not temporal, any schedule produces the serial
// projection's value for associative monoids; views are created lazily (on
// first update within a segment), so update-free segments cost nothing.
//
// Detection (set_tool): the serial detectors also run ON this engine, not
// just beside it.  Each segment records its instrumentation events into a
// private shard exactly as it keeps a private hypermap, joins splice child
// shards positionally alongside the view fold, and worker 0 drains the root
// frame's shard through a ShardReplayer at every root-level sync — so an
// attached ParallelTool receives the byte-identical event stream of a
// serial no-steal run while the program executes on all cores
// (tool/shard.hpp has the full argument, DESIGN.md §5 the design notes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/hyperobject.hpp"
#include "sched/worksteal_deque.hpp"
#include "shadow/shadow_space.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "tool/shard.hpp"

namespace rader {

class ParallelTool;

class ParallelEngine final : public Engine {
 public:
  /// `workers` total workers including the calling thread (0 = hardware
  /// concurrency).
  explicit ParallelEngine(unsigned workers = 0);
  ~ParallelEngine() override;

  /// Attach `tool` (nullptr to detach) for subsequent run()s: its serial
  /// Tool callbacks are invoked on worker 0, in the depth-first order of the
  /// computation, byte-identical to a serial no-steal run of the same
  /// program.  The tool must outlive the runs; not callable mid-run.
  void set_tool(ParallelTool* tool);

  /// Execute `root` to completion using all workers.  The calling thread
  /// participates; not reentrant.
  void run(FnView root);

  unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Total successful steals across the last run (scheduler telemetry).
  std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

  // ---- Engine interface ----
  bool inline_tasks() const override { return false; }
  void spawn_inline(FnView fn) override;
  void spawn_task(Task task) override;
  void call_inline(FnView fn) override;
  void sync() override;
  void access(AccessKind kind, std::uintptr_t addr, std::size_t size,
              SrcTag tag) override;
  void clear_shadow(std::uintptr_t addr, std::size_t size) override;
  void register_reducer(HyperobjectBase* r, void* leftmost_view,
                        SrcTag tag) override;
  void unregister_reducer(HyperobjectBase* r, SrcTag tag) override;
  void* current_view(HyperobjectBase* r, SrcTag tag) override;
  void reducer_read(HyperobjectBase* r, ReducerOp op, SrcTag tag) override;
  void begin_update(HyperobjectBase* r, SrcTag tag) override;
  void end_update(HyperobjectBase* r) override;

 private:
  // Views of one segment, keyed by reducer.  std::map keeps the fold order
  // deterministic (registration order) without a sort at every fold.
  using Hypermap = std::map<ReducerId, void*>;

  struct ChildRecord {
    explicit ChildRecord(Task t) : task(std::move(t)) {}
    Task task;
    std::atomic<bool> done{false};
    Hypermap result;      // child's folded views, published with `done`
    EventShard result_ev;  // child's spliced event shard, ditto
  };

  struct JoinItem {
    std::unique_ptr<ChildRecord> child;
    std::unique_ptr<Hypermap> segment;  // continuation segment after it
    std::unique_ptr<EventShard> segment_ev;  // its events (tool attached)
  };

  struct FrameCtx {
    Hypermap* seg0 = nullptr;  // leftmost segment (aliased for called frames)
    bool owns_seg0 = false;
    Hypermap* cur = nullptr;   // segment the worker is currently updating
    // Event-shard mirror of the two pointers above; null when no tool is
    // attached.  ev0 aliases the parent's current shard for called frames
    // and the ChildRecord's shard for spawned ones (owns_ev0 only for the
    // root frame).
    EventShard* ev0 = nullptr;
    bool owns_ev0 = false;
    EventShard* cur_ev = nullptr;
    std::vector<JoinItem> items;
  };

  struct WorkerState {
    sched::WorkStealDeque deque;
    Rng rng;
    std::vector<FrameCtx> frames;
    unsigned index = 0;
    // Per-worker accounting, folded into the caller's metrics sink at the
    // end of each run (sweep workers fold theirs the same way).
    metrics::Registry metrics;
    // Per-worker access-dedup shard: maps addresses to the worker strand
    // that last recorded them so hot loops don't flood the event shards.
    // Private to the worker; epochs are monotonic across runs, so stale
    // entries never match and the space never needs clearing.
    shadow::ShadowSpace shadow;
    std::uint32_t strand_epoch = 1;
    // Nested engine-internal user code (Reduce / CreateIdentity) whose
    // events have no counterpart in the serial no-steal stream.
    int suppress = 0;
    // User Update code depth (begin_update/end_update), for the view_aware
    // flag on recorded accesses.
    unsigned view_aware_depth = 0;
  };

  static thread_local WorkerState* tl_worker_;

  WorkerState& self() {
    RADER_CHECK_MSG(tl_worker_ != nullptr,
                    "rader parallel API used off a worker thread");
    return *tl_worker_;
  }

  void helper_loop(unsigned index);
  ChildRecord* try_get_work(WorkerState& w);
  void execute_child(WorkerState& w, ChildRecord* rec);
  void do_sync(WorkerState& w);
  void fold_map(Hypermap& acc, Hypermap& right);
  void wake_helpers();

  /// Append `e` to the calling worker's current segment shard (no-op
  /// without a tool, under suppression, or outside a frame).  Control
  /// events and clears advance the worker's strand epoch.
  void record(WorkerState& w, const ShardEvent& e);

  ReducerId get_or_register(HyperobjectBase* r, void* leftmost);

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<int> sleeping_{0};
  std::atomic<std::uint64_t> steals_{0};
  // Pseudo frame ids for trace slices (real frames have no global ids here);
  // only advanced while a TraceScope is active.
  std::atomic<std::uint32_t> trace_frames_{0};

  // Written between runs only; read by workers during a run (ordered by the
  // deque push/steal that hands them their first task).
  ParallelTool* tool_ = nullptr;
  bool record_accesses_ = false;
  std::unique_ptr<ShardReplayer> replayer_;  // worker 0 only

  std::mutex reg_mu_;
  std::unordered_map<HyperobjectBase*, ReducerId> reducer_ids_;
  std::vector<HyperobjectBase*> reducers_;
};

}  // namespace rader
