// ParallelEngine: a work-stealing runtime for real parallel execution.
//
// This is the substrate the paper's benchmarks presume — a Cilk-style
// work-stealing scheduler with reducer support.  The calling thread becomes
// worker 0 and executes the root; helper threads steal from Chase–Lev
// deques.  Scheduling is CHILD-stealing (a spawned task is pushed and the
// continuation keeps running): continuation stealing requires compiler
// support that a library cannot express.
//
// Reducer determinism under child stealing is achieved with ordered view
// segments rather than Cilk's steal-lazy hypermaps (see DESIGN.md §2): each
// frame keeps, in serial order, one join item per spawn — the child's
// folded view map plus the continuation segment that follows it — and the
// sync folds them left-to-right with the monoid's reduce.  Because the fold
// order is positional, not temporal, any schedule produces the serial
// projection's value for associative monoids; views are created lazily (on
// first update within a segment), so update-free segments cost nothing.
//
// The detectors never run on this engine (they are serial algorithms); the
// instrumentation entry points are no-ops here.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/hyperobject.hpp"
#include "sched/worksteal_deque.hpp"
#include "support/rng.hpp"

namespace rader {

class ParallelEngine final : public Engine {
 public:
  /// `workers` total workers including the calling thread (0 = hardware
  /// concurrency).
  explicit ParallelEngine(unsigned workers = 0);
  ~ParallelEngine() override;

  /// Execute `root` to completion using all workers.  The calling thread
  /// participates; not reentrant.
  void run(FnView root);

  unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Total successful steals across the last run (scheduler telemetry).
  std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

  // ---- Engine interface ----
  bool inline_tasks() const override { return false; }
  void spawn_inline(FnView fn) override;
  void spawn_task(Task task) override;
  void call_inline(FnView fn) override;
  void sync() override;
  void access(AccessKind, std::uintptr_t, std::size_t, SrcTag) override {}
  void clear_shadow(std::uintptr_t, std::size_t) override {}
  void register_reducer(HyperobjectBase* r, void* leftmost_view,
                        SrcTag tag) override;
  void unregister_reducer(HyperobjectBase* r, SrcTag tag) override;
  void* current_view(HyperobjectBase* r, SrcTag tag) override;
  void reducer_read(HyperobjectBase* r, ReducerOp op, SrcTag tag) override;
  void begin_update(HyperobjectBase*, SrcTag) override {}
  void end_update(HyperobjectBase*) override {}

 private:
  // Views of one segment, keyed by reducer.  std::map keeps the fold order
  // deterministic (registration order) without a sort at every fold.
  using Hypermap = std::map<ReducerId, void*>;

  struct ChildRecord {
    explicit ChildRecord(Task t) : task(std::move(t)) {}
    Task task;
    std::atomic<bool> done{false};
    Hypermap result;  // child's folded views, published with `done`
  };

  struct JoinItem {
    std::unique_ptr<ChildRecord> child;
    std::unique_ptr<Hypermap> segment;  // continuation segment after it
  };

  struct FrameCtx {
    Hypermap* seg0 = nullptr;  // leftmost segment (aliased for called frames)
    bool owns_seg0 = false;
    Hypermap* cur = nullptr;   // segment the worker is currently updating
    std::vector<JoinItem> items;
  };

  struct WorkerState {
    sched::WorkStealDeque deque;
    Rng rng;
    std::vector<FrameCtx> frames;
    unsigned index = 0;
  };

  static thread_local WorkerState* tl_worker_;

  WorkerState& self() {
    RADER_CHECK_MSG(tl_worker_ != nullptr,
                    "rader parallel API used off a worker thread");
    return *tl_worker_;
  }

  void helper_loop(unsigned index);
  ChildRecord* try_get_work(WorkerState& w);
  void execute_child(WorkerState& w, ChildRecord* rec);
  void do_sync(WorkerState& w);
  void fold_map(Hypermap& acc, Hypermap& right);
  void wake_helpers();

  ReducerId get_or_register(HyperobjectBase* r, void* leftmost);

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<int> sleeping_{0};
  std::atomic<std::uint64_t> steals_{0};
  // Pseudo frame ids for trace slices (real frames have no global ids here);
  // only advanced while a TraceScope is active.
  std::atomic<std::uint32_t> trace_frames_{0};

  std::mutex reg_mu_;
  std::unordered_map<HyperobjectBase*, ReducerId> reducer_ids_;
  std::vector<HyperobjectBase*> reducers_;
};

}  // namespace rader
