// Chase–Lev work-stealing deque.
//
// The classic lock-free deque of Chase & Lev ("Dynamic circular
// work-stealing deque", SPAA 2005) with the C11 memory-ordering fixes of
// Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013):
//   * the OWNER pushes and pops at the bottom;
//   * THIEVES steal from the top with a CAS;
//   * the circular buffer grows geometrically; retired buffers are kept
//     until destruction so racing thieves never read freed memory.
//
// Elements are raw pointers (the scheduler stores ChildRecord*); ownership
// of the pointee stays with the scheduler's join records.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/common.hpp"

namespace rader::sched {

class WorkStealDeque {
 public:
  explicit WorkStealDeque(std::size_t initial_capacity = 64);
  ~WorkStealDeque() = default;

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner only: push a task at the bottom.
  void push(void* task);

  /// Owner only: pop the newest task, or nullptr if empty.
  void* pop();

  /// Any thread: steal the oldest task, or nullptr if empty/lost the race.
  void* steal();

  /// Approximate size (racy; scheduling heuristic only).
  std::size_t size_estimate() const;

  /// Approximately empty (racy; lets thieves skip drained victims without
  /// paying the steal CAS).
  bool empty() const { return size_estimate() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<void*>[cap]) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<void*>[]> slots;

    void* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, void* v) {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
  };

  Buffer* grow(Buffer* buf, std::int64_t top, std::int64_t bottom);

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only access
};

}  // namespace rader::sched
