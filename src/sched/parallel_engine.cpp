#include "sched/parallel_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "support/trace.hpp"
#include "tool/tool.hpp"

namespace rader {

namespace {

// Long-lived pool threads re-check the active trace session each loop and
// (re-)attach a buffer when it changes; scopes come and go while the
// engine's threads persist.
trace::Session* sync_thread_buffer(trace::Session* attached, unsigned index) {
  trace::Session* s = trace::session();
  if (s == attached) return attached;
  trace::set_thread_buffer(
      s != nullptr ? s->make_buffer("pe-worker-" + std::to_string(index))
                   : nullptr);
  return s;
}

}  // namespace

thread_local ParallelEngine::WorkerState* ParallelEngine::tl_worker_ = nullptr;

ParallelEngine::ParallelEngine(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned i = 0; i < workers; ++i) {
    auto w = std::make_unique<WorkerState>();
    w->index = i;
    w->rng.reseed(0x9e3779b97f4a7c15ull + i);
    workers_.push_back(std::move(w));
  }
  // Worker 0 is the calling thread; helpers are 1..n-1.
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { helper_loop(i); });
  }
}

ParallelEngine::~ParallelEngine() {
  stop_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ParallelEngine::set_tool(ParallelTool* tool) {
  RADER_CHECK_MSG(!running_.load(std::memory_order_acquire),
                  "ParallelEngine::set_tool during a run");
  tool_ = tool;
}

void ParallelEngine::record(WorkerState& w, const ShardEvent& e) {
  if (tool_ == nullptr || w.suppress > 0 || w.frames.empty()) return;
  switch (e.kind) {
    case ShardEvent::Kind::kFrameEnter:
    case ShardEvent::Kind::kFrameReturn:
    case ShardEvent::Kind::kSync:
      // A parallel-control event ends the worker's current strand.
      ++w.strand_epoch;
      break;
    case ShardEvent::Kind::kClear:
      // Freed addresses may be reused by a later allocation: retire the
      // whole strand's dedup state (clears are rare; coarse is fine).
      ++w.strand_epoch;
      break;
    default:
      break;
  }
  w.frames.back().cur_ev->push_back(e);
  metrics::bump(metrics::Counter::kShardEvents);
}

void ParallelEngine::helper_loop(unsigned index) {
  WorkerState& w = *workers_[index];
  tl_worker_ = &w;
  trace::set_worker(index);
  trace::Session* attached = nullptr;
  Engine::Scope scope(this);
  // The worker's private sink for the thread's lifetime; run() folds the
  // accumulated snapshot into the caller's sink after every join.
  metrics::Scope mscope(&w.metrics);
  while (!stop_.load(std::memory_order_acquire)) {
    attached = sync_thread_buffer(attached, index);
    if (ChildRecord* rec = try_get_work(w)) {
      execute_child(w, rec);
      continue;
    }
    // Nothing to steal: back off, then sleep until new work is spawned.
    std::unique_lock<std::mutex> lock(idle_mu_);
    sleeping_.fetch_add(1, std::memory_order_relaxed);
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
    sleeping_.fetch_sub(1, std::memory_order_relaxed);
  }
  trace::set_thread_buffer(nullptr);
  tl_worker_ = nullptr;
}

ParallelEngine::ChildRecord* ParallelEngine::try_get_work(WorkerState& w) {
  const std::size_t n = workers_.size();
  // A few random-victim rounds, as in the Cilk scheduler.
  for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
    const auto victim = static_cast<std::size_t>(w.rng.below(n));
    if (victim == w.index) continue;
    if (workers_[victim]->deque.empty()) continue;  // skip drained victims
    if (void* task = workers_[victim]->deque.steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      metrics::bump(metrics::Counter::kEngineSteals);
      // The thief counts the entry out on its own sink; the victim counted
      // it in.  Per-thread values go negative/positive, the fold sums to 0.
      metrics::gauge_add(metrics::Gauge::kDequeSize, -1);
      trace::emit(trace::EventKind::kSteal, kInvalidFrame, victim, 0);
      return static_cast<ChildRecord*>(task);
    }
  }
  return nullptr;
}

void ParallelEngine::wake_helpers() {
  if (sleeping_.load(std::memory_order_relaxed) > 0) idle_cv_.notify_all();
}

void ParallelEngine::run(FnView root) {
  RADER_CHECK_MSG(!running_.exchange(true), "ParallelEngine::run reentered");
  steals_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    reducer_ids_.clear();
    reducers_.clear();
  }
  record_accesses_ = tool_ != nullptr && tool_->wants_accesses();

  WorkerState& w = *workers_[0];
  tl_worker_ = &w;
  trace::set_worker(0);
  trace::emit(trace::EventKind::kRunBegin, kInvalidFrame);
  {
    metrics::Scope mscope(&w.metrics);
    Engine::Scope scope(this);

    if (tool_ != nullptr) {
      replayer_ = std::make_unique<ShardReplayer>(tool_);
      replayer_->begin();
    }

    FrameCtx frame;
    frame.seg0 = new Hypermap();
    frame.owns_seg0 = true;
    frame.cur = frame.seg0;
    if (tool_ != nullptr) {
      // The root frame's enter/return are minted by the replayer itself
      // (begin()/end()), so its shard holds body events only.
      frame.ev0 = new EventShard();
      frame.owns_ev0 = true;
      frame.cur_ev = frame.ev0;
    }
    w.frames.push_back(std::move(frame));

    const FrameId root_tfid =
        trace::enabled()
            ? trace_frames_.fetch_add(1, std::memory_order_relaxed)
            : kInvalidFrame;
    trace::emit(trace::EventKind::kFrameEnter, root_tfid, kInvalidFrame, 0,
                static_cast<std::uint8_t>(FrameKind::kRoot));
    root();
    do_sync(w);  // implicit sync of the root frame (drains the shard too)
    trace::emit(trace::EventKind::kFrameReturn, root_tfid, kInvalidFrame, 0,
                static_cast<std::uint8_t>(FrameKind::kRoot));

    FrameCtx done = std::move(w.frames.back());
    w.frames.pop_back();
    RADER_CHECK(w.frames.empty());

    // Fold any views left in the root segment into their reducers' leftmost
    // views (reducers bound lazily never had their leftmost in a segment).
    // A serial no-steal run has no counterpart for these reduces (updates
    // land directly in the leftmost view there), so the user code runs
    // suppressed.
    ++w.suppress;
    for (auto& [h, view] : *done.seg0) {
      HyperobjectBase* r;
      {
        std::lock_guard<std::mutex> lock(reg_mu_);
        r = reducers_[h];
      }
      if (r == nullptr) continue;  // destroyed during the run
      if (view != r->hyper_leftmost()) {
        r->hyper_reduce(r->hyper_leftmost(), view);
        r->hyper_destroy(view);
      }
    }
    --w.suppress;
    delete done.seg0;

    if (tool_ != nullptr) {
      if (!done.ev0->empty()) {
        // Events recorded after the last root-level sync.
        metrics::bump(metrics::Counter::kShardDrains);
        replayer_->feed(*done.ev0);
      }
      delete done.ev0;
      replayer_->end();
      replayer_.reset();
    }
  }

  // Fold every worker's accounting into the caller's sink, the same shape
  // sweep workers use: private Registry per worker, one absorb after the
  // join.  All worker bumps happen inside executed children, ordered before
  // this point by each child's done-flag release/acquire chain up the spawn
  // tree, so the registries are quiescent here.
  if (metrics::Registry* outer = metrics::current()) {
    metrics::Snapshot total;
    for (auto& wk : workers_) {
      total.add(wk->metrics.snapshot());
      wk->metrics.reset();
    }
    outer->absorb(total);
  } else {
    for (auto& wk : workers_) wk->metrics.reset();
  }

  record_accesses_ = false;
  trace::emit(trace::EventKind::kRunEnd, kInvalidFrame,
              steals_.load(std::memory_order_relaxed), 0);
  tl_worker_ = nullptr;
  running_.store(false, std::memory_order_release);
}

void ParallelEngine::spawn_inline(FnView) {
  // Engine contract: inline_tasks() is false, so rader::spawn always hands a
  // parallel engine an owning Task.  A non-owning FnView must never reach a
  // deque (the referent dies with the spawning full-expression).
  RADER_UNREACHABLE("spawn_inline on a parallel engine");
}

void ParallelEngine::spawn_task(Task task) {
  WorkerState& w = self();
  RADER_CHECK_MSG(!w.frames.empty(), "spawn outside of ParallelEngine::run");
  FrameCtx& f = w.frames.back();
  JoinItem item;
  item.child = std::make_unique<ChildRecord>(std::move(task));
  item.segment = std::make_unique<Hypermap>();
  f.cur = item.segment.get();  // continuation runs in a fresh segment
  if (tool_ != nullptr) {
    item.segment_ev = std::make_unique<EventShard>();
    f.cur_ev = item.segment_ev.get();
    ++w.strand_epoch;  // the continuation is a new strand
  }
  ChildRecord* rec = item.child.get();
  f.items.push_back(std::move(item));
  w.deque.push(rec);
  metrics::gauge_add(metrics::Gauge::kDequeSize, 1);
  wake_helpers();
}

void ParallelEngine::call_inline(FnView fn) {
  WorkerState& w = self();
  RADER_CHECK_MSG(!w.frames.empty(), "call outside of ParallelEngine::run");
  FrameCtx frame;
  frame.seg0 = w.frames.back().cur;  // series: share the parent's segment
  frame.owns_seg0 = false;
  frame.cur = frame.seg0;
  if (tool_ != nullptr) {
    frame.ev0 = w.frames.back().cur_ev;  // series: share the shard too
    frame.owns_ev0 = false;
    frame.cur_ev = frame.ev0;
  }
  w.frames.push_back(std::move(frame));
  record(w, ShardEvent{ShardEvent::Kind::kFrameEnter,
                       static_cast<std::uint8_t>(FrameKind::kCalled)});
  const FrameId tfid =
      trace::enabled()
          ? trace_frames_.fetch_add(1, std::memory_order_relaxed)
          : kInvalidFrame;
  trace::emit(trace::EventKind::kFrameEnter, tfid, kInvalidFrame, 0,
              static_cast<std::uint8_t>(FrameKind::kCalled));
  fn();
  do_sync(w);
  record(w, ShardEvent{ShardEvent::Kind::kFrameReturn,
                       static_cast<std::uint8_t>(FrameKind::kCalled)});
  trace::emit(trace::EventKind::kFrameReturn, tfid, kInvalidFrame, 0,
              static_cast<std::uint8_t>(FrameKind::kCalled));
  w.frames.pop_back();
}

void ParallelEngine::execute_child(WorkerState& w, ChildRecord* rec) {
  FrameCtx frame;
  frame.seg0 = new Hypermap();
  frame.owns_seg0 = true;
  frame.cur = frame.seg0;
  if (tool_ != nullptr) {
    // Record straight into the join record: the shard is published to the
    // joining worker with the done flag, like the view map.
    frame.ev0 = &rec->result_ev;
    frame.owns_ev0 = false;
    frame.cur_ev = frame.ev0;
  }
  w.frames.push_back(std::move(frame));
  metrics::bump(metrics::Counter::kEngineTasks);
  record(w, ShardEvent{ShardEvent::Kind::kFrameEnter,
                       static_cast<std::uint8_t>(FrameKind::kSpawned)});

  const FrameId tfid =
      trace::enabled()
          ? trace_frames_.fetch_add(1, std::memory_order_relaxed)
          : kInvalidFrame;
  trace::emit(trace::EventKind::kFrameEnter, tfid, kInvalidFrame, 0,
              static_cast<std::uint8_t>(FrameKind::kSpawned));
  rec->task();
  do_sync(w);  // implicit sync before "returning"
  record(w, ShardEvent{ShardEvent::Kind::kFrameReturn,
                       static_cast<std::uint8_t>(FrameKind::kSpawned)});
  trace::emit(trace::EventKind::kFrameReturn, tfid, kInvalidFrame, 0,
              static_cast<std::uint8_t>(FrameKind::kSpawned));

  FrameCtx done = std::move(w.frames.back());
  w.frames.pop_back();
  rec->result = std::move(*done.seg0);
  delete done.seg0;
  rec->done.store(true, std::memory_order_release);
}

void ParallelEngine::sync() {
  WorkerState& w = self();
  if (w.frames.empty()) return;
  do_sync(w);
}

void ParallelEngine::do_sync(WorkerState& w) {
  // Join: every spawned child of this frame must complete.  While waiting,
  // keep the machine busy — pop our own deque (our children / descendants)
  // or steal elsewhere.  Because the view fold below is positional, helping
  // with unrelated work never perturbs reducer semantics.
  {
    const std::size_t frame_idx = w.frames.size() - 1;
    for (std::size_t i = 0;; ++i) {
      FrameCtx& f = w.frames[frame_idx];
      if (i >= f.items.size()) break;
      ChildRecord* child = f.items[i].child.get();
      while (!child->done.load(std::memory_order_acquire)) {
        if (void* task = w.deque.pop()) {
          metrics::gauge_add(metrics::Gauge::kDequeSize, -1);
          execute_child(w, static_cast<ChildRecord*>(task));
        } else if (ChildRecord* stolen = try_get_work(w)) {
          execute_child(w, stolen);
        } else {
          std::this_thread::yield();
        }
      }
    }
  }
  // Fold in serial order: seg0 ⊗ child₁ ⊗ seg₁ ⊗ child₂ ⊗ seg₂ ⊗ …
  // The event shards splice in the same positional order, which is exactly
  // the depth-first order the serial engine would have visited: everything
  // a child did sits at its spawn point, before the continuation.
  FrameCtx& f = w.frames.back();
  const bool had_items = !f.items.empty();
  ++w.suppress;  // user Reduce code below has no serial-no-steal counterpart
  for (auto& item : f.items) {
    fold_map(*f.seg0, item.child->result);
    fold_map(*f.seg0, *item.segment);
    if (tool_ != nullptr) {
      f.ev0->insert(f.ev0->end(), item.child->result_ev.begin(),
                    item.child->result_ev.end());
      f.ev0->insert(f.ev0->end(), item.segment_ev->begin(),
                    item.segment_ev->end());
    }
  }
  --w.suppress;
  f.items.clear();
  f.cur = f.seg0;
  if (tool_ != nullptr) {
    f.cur_ev = f.ev0;
    // The serial engine's sync is a no-op (no event) when nothing was
    // spawned since the last sync; mirror that exactly.
    if (had_items) {
      record(w, ShardEvent{ShardEvent::Kind::kSync});
    }
    // Root-level syncs on worker 0 bound shard memory and detector latency:
    // everything up to here is final depth-first prefix, so replay it now.
    if (w.index == 0 && w.frames.size() == 1 && !f.ev0->empty()) {
      metrics::bump(metrics::Counter::kShardDrains);
      replayer_->feed(*f.ev0);
      f.ev0->clear();
    }
  }
  trace::emit(trace::EventKind::kSync, kInvalidFrame);
}

void ParallelEngine::fold_map(Hypermap& acc, Hypermap& right) {
  for (auto& [h, view] : right) {
    auto it = acc.find(h);
    if (it == acc.end()) {
      acc.emplace(h, view);  // transplant (preserves leftmost pointers)
      continue;
    }
    HyperobjectBase* r;
    {
      // get_or_register may grow reducers_ concurrently; snapshot the
      // pointer under the registry lock (but run user Reduce code outside).
      std::lock_guard<std::mutex> lock(reg_mu_);
      r = reducers_[h];
    }
    if (r == nullptr) {
      // The reducer was destroyed while sibling segments still held views —
      // the program destroyed it before the sync that joins its updaters.
      // That is a view-read race (the kDestroy reducer-read against the
      // updates), which an attached detector reports; without the monoid we
      // can only leak the orphan view rather than abort the whole run.
      continue;
    }
    trace::emit(trace::EventKind::kReduceBegin, kInvalidFrame, h, 0);
    r->hyper_reduce(it->second, view);
    r->hyper_destroy(view);
    trace::emit(trace::EventKind::kReduceEnd, kInvalidFrame, h, 0);
  }
  right.clear();
}

ReducerId ParallelEngine::get_or_register(HyperobjectBase* r, void* leftmost) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto it = reducer_ids_.find(r);
  if (it != reducer_ids_.end()) return it->second;
  const auto h = static_cast<ReducerId>(reducers_.size());
  reducers_.push_back(r);
  reducer_ids_.emplace(r, h);
  (void)leftmost;  // lazily-bound leftmost views fold in at run() end
  return h;
}

void ParallelEngine::register_reducer(HyperobjectBase* r, void* leftmost_view,
                                      SrcTag tag) {
  if (!running_.load(std::memory_order_acquire) || tl_worker_ == nullptr) {
    return;  // created outside the computation: bound lazily on first use
  }
  const ReducerId h = get_or_register(r, leftmost_view);
  // The leftmost view lives in the creating strand's current segment and
  // folds leftward from there, exactly like the serial engine's base view.
  (*self().frames.back().cur)[h] = leftmost_view;
  trace::emit(trace::EventKind::kViewCreate, kInvalidFrame, 0, h, /*aux=*/0);
  ShardEvent e{ShardEvent::Kind::kReducerOp,
               static_cast<std::uint8_t>(ReducerOp::kCreate)};
  e.slot = h;
  e.label = tag.label;
  record(self(), e);
}

void ParallelEngine::unregister_reducer(HyperobjectBase* r, SrcTag tag) {
  if (!running_.load(std::memory_order_acquire) || tl_worker_ == nullptr) {
    return;
  }
  ReducerId h;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    auto it = reducer_ids_.find(r);
    if (it == reducer_ids_.end()) return;
    h = it->second;
    // Contract (as in Cilk): destroy a reducer only after the sync that
    // joins all its updaters; at that point its only view is in the current
    // segment.
    if (!self().frames.empty()) {
      self().frames.back().cur->erase(h);
    }
    reducers_[h] = nullptr;
    reducer_ids_.erase(it);
  }
  ShardEvent e{ShardEvent::Kind::kReducerOp,
               static_cast<std::uint8_t>(ReducerOp::kDestroy)};
  e.slot = h;
  e.label = tag.label;
  record(self(), e);
  if (record_accesses_) {
    // The leftmost view's storage dies with the reducer (the serial
    // engine's teardown clear).
    ShardEvent c{ShardEvent::Kind::kClear};
    c.addr = reinterpret_cast<std::uintptr_t>(r->hyper_leftmost());
    c.size = static_cast<std::uint32_t>(r->hyper_view_size());
    record(self(), c);
  }
}

void* ParallelEngine::current_view(HyperobjectBase* r, SrcTag) {
  const ReducerId h = get_or_register(r, r->hyper_leftmost());
  WorkerState& w = self();
  // The serial engine binds reducers silently at view lookups; the marker
  // pins the slot's first-contact position in the spliced stream so the
  // replayer renumbers reducers in serial bind order (tool/shard.hpp).
  ShardEvent bind{ShardEvent::Kind::kBind};
  bind.slot = h;
  record(w, bind);
  Hypermap& m = *w.frames.back().cur;
  auto it = m.find(h);
  if (it != m.end()) return it->second;
  // Identity creation runs user code, but a serial no-steal execution never
  // creates identities (every lookup hits the leftmost view): suppress.
  ++w.suppress;
  void* view = r->hyper_create_identity();
  --w.suppress;
  m.emplace(h, view);
  trace::emit(trace::EventKind::kViewCreate, kInvalidFrame, 0, h, /*aux=*/1);
  return view;
}

void ParallelEngine::reducer_read(HyperobjectBase* r, ReducerOp op,
                                  SrcTag tag) {
  if (tool_ == nullptr || !running_.load(std::memory_order_acquire) ||
      tl_worker_ == nullptr) {
    return;
  }
  const ReducerId h = get_or_register(r, r->hyper_leftmost());
  ShardEvent e{ShardEvent::Kind::kReducerOp, static_cast<std::uint8_t>(op)};
  e.slot = h;
  e.label = tag.label;
  record(self(), e);
}

void ParallelEngine::begin_update(HyperobjectBase* r, SrcTag tag) {
  if (!running_.load(std::memory_order_acquire) || tl_worker_ == nullptr) {
    return;
  }
  WorkerState& w = self();
  ++w.view_aware_depth;
  if (tool_ == nullptr) return;
  const ReducerId h = get_or_register(r, r->hyper_leftmost());
  ShardEvent e{ShardEvent::Kind::kReducerOp,
               static_cast<std::uint8_t>(ReducerOp::kUpdate)};
  e.slot = h;
  e.label = tag.label;
  record(w, e);
}

void ParallelEngine::end_update(HyperobjectBase*) {
  if (!running_.load(std::memory_order_acquire) || tl_worker_ == nullptr) {
    return;
  }
  WorkerState& w = self();
  if (w.view_aware_depth > 0) --w.view_aware_depth;
}

void ParallelEngine::access(AccessKind kind, std::uintptr_t addr,
                            std::size_t size, SrcTag tag) {
  if (!record_accesses_ || tl_worker_ == nullptr) return;
  WorkerState& w = *tl_worker_;
  if (w.suppress > 0 || w.frames.empty()) return;
  // Per-strand dedup through the worker's private shadow shard: the payload
  // keys (strand epoch, access kind) on the access's first byte, so a hot
  // loop records one event per strand instead of millions.  Best-effort by
  // contract (ParallelTool::wants_accesses): at least one event per
  // (strand, location, kind) survives; multiplicity does not.
  const shadow::ShadowSpace::Payload payload =
      (w.strand_epoch << 1) |
      (kind == AccessKind::kWrite ? 1u : 0u);
  if (w.shadow.get(addr) == payload) return;
  w.shadow.set(addr, payload);
  ShardEvent e{ShardEvent::Kind::kAccess, static_cast<std::uint8_t>(kind)};
  e.view_aware = w.view_aware_depth > 0;
  e.addr = addr;
  e.size = static_cast<std::uint32_t>(size);
  e.label = tag.label;
  record(w, e);
}

void ParallelEngine::clear_shadow(std::uintptr_t addr, std::size_t size) {
  if (!record_accesses_ || tl_worker_ == nullptr) return;
  WorkerState& w = *tl_worker_;
  if (w.suppress > 0 || w.frames.empty()) return;
  ShardEvent e{ShardEvent::Kind::kClear};
  e.addr = addr;
  e.size = static_cast<std::uint32_t>(size);
  record(w, e);
}

}  // namespace rader
