#include "sched/parallel_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "support/trace.hpp"

namespace rader {

namespace {

// Long-lived pool threads re-check the active trace session each loop and
// (re-)attach a buffer when it changes; scopes come and go while the
// engine's threads persist.
trace::Session* sync_thread_buffer(trace::Session* attached, unsigned index) {
  trace::Session* s = trace::session();
  if (s == attached) return attached;
  trace::set_thread_buffer(
      s != nullptr ? s->make_buffer("pe-worker-" + std::to_string(index))
                   : nullptr);
  return s;
}

}  // namespace

thread_local ParallelEngine::WorkerState* ParallelEngine::tl_worker_ = nullptr;

ParallelEngine::ParallelEngine(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned i = 0; i < workers; ++i) {
    auto w = std::make_unique<WorkerState>();
    w->index = i;
    w->rng.reseed(0x9e3779b97f4a7c15ull + i);
    workers_.push_back(std::move(w));
  }
  // Worker 0 is the calling thread; helpers are 1..n-1.
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { helper_loop(i); });
  }
}

ParallelEngine::~ParallelEngine() {
  stop_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ParallelEngine::helper_loop(unsigned index) {
  WorkerState& w = *workers_[index];
  tl_worker_ = &w;
  trace::set_worker(index);
  trace::Session* attached = nullptr;
  Engine::Scope scope(this);
  while (!stop_.load(std::memory_order_acquire)) {
    attached = sync_thread_buffer(attached, index);
    if (ChildRecord* rec = try_get_work(w)) {
      execute_child(w, rec);
      continue;
    }
    // Nothing to steal: back off, then sleep until new work is spawned.
    std::unique_lock<std::mutex> lock(idle_mu_);
    sleeping_.fetch_add(1, std::memory_order_relaxed);
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
    sleeping_.fetch_sub(1, std::memory_order_relaxed);
  }
  trace::set_thread_buffer(nullptr);
  tl_worker_ = nullptr;
}

ParallelEngine::ChildRecord* ParallelEngine::try_get_work(WorkerState& w) {
  const std::size_t n = workers_.size();
  // A few random-victim rounds, as in the Cilk scheduler.
  for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
    const auto victim = static_cast<std::size_t>(w.rng.below(n));
    if (victim == w.index) continue;
    if (void* task = workers_[victim]->deque.steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      trace::emit(trace::EventKind::kSteal, kInvalidFrame, victim, 0);
      return static_cast<ChildRecord*>(task);
    }
  }
  return nullptr;
}

void ParallelEngine::wake_helpers() {
  if (sleeping_.load(std::memory_order_relaxed) > 0) idle_cv_.notify_all();
}

void ParallelEngine::run(FnView root) {
  RADER_CHECK_MSG(!running_.exchange(true), "ParallelEngine::run reentered");
  steals_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    reducer_ids_.clear();
    reducers_.clear();
  }

  WorkerState& w = *workers_[0];
  tl_worker_ = &w;
  trace::set_worker(0);
  trace::emit(trace::EventKind::kRunBegin, kInvalidFrame);
  Engine::Scope scope(this);

  FrameCtx frame;
  frame.seg0 = new Hypermap();
  frame.owns_seg0 = true;
  frame.cur = frame.seg0;
  w.frames.push_back(std::move(frame));

  const FrameId root_tfid =
      trace::enabled()
          ? trace_frames_.fetch_add(1, std::memory_order_relaxed)
          : kInvalidFrame;
  trace::emit(trace::EventKind::kFrameEnter, root_tfid, kInvalidFrame, 0,
              static_cast<std::uint8_t>(FrameKind::kRoot));
  root();
  do_sync(w);  // implicit sync of the root frame
  trace::emit(trace::EventKind::kFrameReturn, root_tfid, kInvalidFrame, 0,
              static_cast<std::uint8_t>(FrameKind::kRoot));

  FrameCtx done = std::move(w.frames.back());
  w.frames.pop_back();
  RADER_CHECK(w.frames.empty());

  // Fold any views left in the root segment into their reducers' leftmost
  // views (reducers bound lazily never had their leftmost in a segment).
  for (auto& [h, view] : *done.seg0) {
    HyperobjectBase* r = reducers_[h];
    if (r == nullptr) continue;  // destroyed during the run
    if (view != r->hyper_leftmost()) {
      r->hyper_reduce(r->hyper_leftmost(), view);
      r->hyper_destroy(view);
    }
  }
  delete done.seg0;

  trace::emit(trace::EventKind::kRunEnd, kInvalidFrame,
              steals_.load(std::memory_order_relaxed), 0);
  tl_worker_ = nullptr;
  running_.store(false, std::memory_order_release);
}

void ParallelEngine::spawn_inline(FnView) {
  // Engine contract: inline_tasks() is false, so rader::spawn always hands a
  // parallel engine an owning Task.  A non-owning FnView must never reach a
  // deque (the referent dies with the spawning full-expression).
  RADER_UNREACHABLE("spawn_inline on a parallel engine");
}

void ParallelEngine::spawn_task(Task task) {
  WorkerState& w = self();
  RADER_CHECK_MSG(!w.frames.empty(), "spawn outside of ParallelEngine::run");
  FrameCtx& f = w.frames.back();
  JoinItem item;
  item.child = std::make_unique<ChildRecord>(std::move(task));
  item.segment = std::make_unique<Hypermap>();
  f.cur = item.segment.get();  // continuation runs in a fresh segment
  ChildRecord* rec = item.child.get();
  f.items.push_back(std::move(item));
  w.deque.push(rec);
  wake_helpers();
}

void ParallelEngine::call_inline(FnView fn) {
  WorkerState& w = self();
  RADER_CHECK_MSG(!w.frames.empty(), "call outside of ParallelEngine::run");
  FrameCtx frame;
  frame.seg0 = w.frames.back().cur;  // series: share the parent's segment
  frame.owns_seg0 = false;
  frame.cur = frame.seg0;
  w.frames.push_back(std::move(frame));
  const FrameId tfid =
      trace::enabled()
          ? trace_frames_.fetch_add(1, std::memory_order_relaxed)
          : kInvalidFrame;
  trace::emit(trace::EventKind::kFrameEnter, tfid, kInvalidFrame, 0,
              static_cast<std::uint8_t>(FrameKind::kCalled));
  fn();
  do_sync(w);
  trace::emit(trace::EventKind::kFrameReturn, tfid, kInvalidFrame, 0,
              static_cast<std::uint8_t>(FrameKind::kCalled));
  w.frames.pop_back();
}

void ParallelEngine::execute_child(WorkerState& w, ChildRecord* rec) {
  FrameCtx frame;
  frame.seg0 = new Hypermap();
  frame.owns_seg0 = true;
  frame.cur = frame.seg0;
  w.frames.push_back(std::move(frame));

  const FrameId tfid =
      trace::enabled()
          ? trace_frames_.fetch_add(1, std::memory_order_relaxed)
          : kInvalidFrame;
  trace::emit(trace::EventKind::kFrameEnter, tfid, kInvalidFrame, 0,
              static_cast<std::uint8_t>(FrameKind::kSpawned));
  rec->task();
  do_sync(w);  // implicit sync before "returning"
  trace::emit(trace::EventKind::kFrameReturn, tfid, kInvalidFrame, 0,
              static_cast<std::uint8_t>(FrameKind::kSpawned));

  FrameCtx done = std::move(w.frames.back());
  w.frames.pop_back();
  rec->result = std::move(*done.seg0);
  delete done.seg0;
  rec->done.store(true, std::memory_order_release);
}

void ParallelEngine::sync() {
  WorkerState& w = self();
  if (w.frames.empty()) return;
  do_sync(w);
}

void ParallelEngine::do_sync(WorkerState& w) {
  // Join: every spawned child of this frame must complete.  While waiting,
  // keep the machine busy — pop our own deque (our children / descendants)
  // or steal elsewhere.  Because the view fold below is positional, helping
  // with unrelated work never perturbs reducer semantics.
  {
    const std::size_t frame_idx = w.frames.size() - 1;
    for (std::size_t i = 0;; ++i) {
      FrameCtx& f = w.frames[frame_idx];
      if (i >= f.items.size()) break;
      ChildRecord* child = f.items[i].child.get();
      while (!child->done.load(std::memory_order_acquire)) {
        if (void* task = w.deque.pop()) {
          execute_child(w, static_cast<ChildRecord*>(task));
        } else if (ChildRecord* stolen = try_get_work(w)) {
          execute_child(w, stolen);
        } else {
          std::this_thread::yield();
        }
      }
    }
  }
  // Fold in serial order: seg0 ⊗ child₁ ⊗ seg₁ ⊗ child₂ ⊗ seg₂ ⊗ …
  FrameCtx& f = w.frames.back();
  for (auto& item : f.items) {
    fold_map(*f.seg0, item.child->result);
    fold_map(*f.seg0, *item.segment);
  }
  f.items.clear();
  f.cur = f.seg0;
  trace::emit(trace::EventKind::kSync, kInvalidFrame);
}

void ParallelEngine::fold_map(Hypermap& acc, Hypermap& right) {
  for (auto& [h, view] : right) {
    auto it = acc.find(h);
    if (it == acc.end()) {
      acc.emplace(h, view);  // transplant (preserves leftmost pointers)
      continue;
    }
    HyperobjectBase* r = reducers_[h];
    RADER_CHECK_MSG(r != nullptr, "reducer destroyed with views outstanding");
    trace::emit(trace::EventKind::kReduceBegin, kInvalidFrame, h, 0);
    r->hyper_reduce(it->second, view);
    r->hyper_destroy(view);
    trace::emit(trace::EventKind::kReduceEnd, kInvalidFrame, h, 0);
  }
  right.clear();
}

ReducerId ParallelEngine::get_or_register(HyperobjectBase* r, void* leftmost) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto it = reducer_ids_.find(r);
  if (it != reducer_ids_.end()) return it->second;
  const auto h = static_cast<ReducerId>(reducers_.size());
  reducers_.push_back(r);
  reducer_ids_.emplace(r, h);
  (void)leftmost;  // lazily-bound leftmost views fold in at run() end
  return h;
}

void ParallelEngine::register_reducer(HyperobjectBase* r, void* leftmost_view,
                                      SrcTag) {
  if (!running_.load(std::memory_order_acquire) || tl_worker_ == nullptr) {
    return;  // created outside the computation: bound lazily on first use
  }
  const ReducerId h = get_or_register(r, leftmost_view);
  // The leftmost view lives in the creating strand's current segment and
  // folds leftward from there, exactly like the serial engine's base view.
  (*self().frames.back().cur)[h] = leftmost_view;
  trace::emit(trace::EventKind::kViewCreate, kInvalidFrame, 0, h, /*aux=*/0);
}

void ParallelEngine::unregister_reducer(HyperobjectBase* r, SrcTag) {
  if (!running_.load(std::memory_order_acquire) || tl_worker_ == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto it = reducer_ids_.find(r);
  if (it == reducer_ids_.end()) return;
  const ReducerId h = it->second;
  // Contract (as in Cilk): destroy a reducer only after the sync that joins
  // all its updaters; at that point its only view is in the current segment.
  if (tl_worker_ != nullptr && !self().frames.empty()) {
    self().frames.back().cur->erase(h);
  }
  reducers_[h] = nullptr;
  reducer_ids_.erase(it);
}

void* ParallelEngine::current_view(HyperobjectBase* r, SrcTag) {
  const ReducerId h = get_or_register(r, r->hyper_leftmost());
  Hypermap& m = *self().frames.back().cur;
  auto it = m.find(h);
  if (it != m.end()) return it->second;
  void* view = r->hyper_create_identity();
  m.emplace(h, view);
  trace::emit(trace::EventKind::kViewCreate, kInvalidFrame, 0, h, /*aux=*/1);
  return view;
}

void ParallelEngine::reducer_read(HyperobjectBase*, ReducerOp, SrcTag) {}

}  // namespace rader
