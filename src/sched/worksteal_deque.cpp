#include "sched/worksteal_deque.hpp"

namespace rader::sched {

WorkStealDeque::WorkStealDeque(std::size_t initial_capacity) {
  std::size_t cap = 8;
  while (cap < initial_capacity) cap <<= 1;
  auto buf = std::make_unique<Buffer>(cap);
  buffer_.store(buf.get(), std::memory_order_relaxed);
  retired_.push_back(std::move(buf));
}

WorkStealDeque::Buffer* WorkStealDeque::grow(Buffer* buf, std::int64_t top,
                                             std::int64_t bottom) {
  auto bigger = std::make_unique<Buffer>(buf->capacity * 2);
  for (std::int64_t i = top; i != bottom; ++i) bigger->put(i, buf->get(i));
  Buffer* raw = bigger.get();
  buffer_.store(raw, std::memory_order_release);
  retired_.push_back(std::move(bigger));  // old buffer stays alive for thieves
  return raw;
}

void WorkStealDeque::push(void* task) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
    buf = grow(buf, t, b);
  }
  buf->put(b, task);
  // Release store (not the fence+relaxed formulation): the thief's acquire
  // load of bottom_ is what publishes the task's contents, and sanitizers
  // do not model standalone fences.
  bottom_.store(b + 1, std::memory_order_release);
}

void* WorkStealDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  if (t > b) {
    // Deque was empty: restore bottom.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  void* task = buf->get(b);
  if (t != b) return task;  // more than one element: no race possible
  // Single element: race with thieves via CAS on top.
  const bool won = top_.compare_exchange_strong(
      t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
  bottom_.store(b + 1, std::memory_order_relaxed);
  return won ? task : nullptr;
}

void* WorkStealDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return nullptr;  // empty
  Buffer* buf = buffer_.load(std::memory_order_consume);
  void* task = buf->get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost the race
  }
  return task;
}

std::size_t WorkStealDeque::size_estimate() const {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<std::size_t>(b - t) : 0;
}

}  // namespace rader::sched
