#include "runtime/api.hpp"

#include "runtime/run.hpp"

// The API is header-only (templates); this translation unit pins the headers
// so interface regressions surface as library build errors.
