// View-epoch stack: the serial engine's model of the runtime's hypermaps.
//
// During parallel execution the Cilk runtime gives each worker a hypermap
// from reducers to views; a fresh (lazily populated) hypermap comes into
// existence at every successful steal, and hypermaps of adjacent
// subcomputations are folded together by Reduce operations.  Under serial
// execution with *simulated* steals this state collapses to a stack:
//
//   * run() pushes the base epoch (view ID 0);
//   * every simulated steal pushes a new epoch with a fresh view ID;
//   * every simulated reduce pops the newest epoch and folds its views into
//     the epoch below (the dominating view survives — view invariants, §5);
//   * because every frame implicitly syncs before returning, the epochs
//     pushed while a frame runs are exactly the ones popped before it
//     returns, so the stack discipline matches the frame stack.
//
// Lookups consult the TOP epoch only — exactly the lazy view semantics: an
// update after a steal creates a new identity view even when an older view
// of the same reducer exists in an outer epoch.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "runtime/types.hpp"
#include "support/common.hpp"

namespace rader {

class ViewEpochs {
 public:
  struct Epoch {
    ViewId vid = kInvalidView;
    // reducer id -> view pointer.  Most epochs touch few reducers.
    std::unordered_map<ReducerId, void*> views;
  };

  std::size_t size() const { return stack_.size(); }
  bool empty() const { return stack_.empty(); }

  void push(ViewId vid) { stack_.push_back(Epoch{vid, {}}); }

  /// Pop the newest epoch and hand its contents to the caller (which drives
  /// the reduce operations).
  Epoch pop() {
    RADER_DCHECK(!stack_.empty());
    Epoch top = std::move(stack_.back());
    stack_.pop_back();
    return top;
  }

  ViewId top_vid() const {
    RADER_DCHECK(!stack_.empty());
    return stack_.back().vid;
  }

  /// View of reducer `h` in the newest epoch, or nullptr.
  void* lookup_top(ReducerId h) const {
    RADER_DCHECK(!stack_.empty());
    const auto& views = stack_.back().views;
    auto it = views.find(h);
    return it == views.end() ? nullptr : it->second;
  }

  void insert_top(ReducerId h, void* view) {
    RADER_DCHECK(!stack_.empty());
    stack_.back().views[h] = view;
  }

  /// Record `view` in the base (outermost) epoch — used when a reducer that
  /// was created before the run is first touched, so that its leftmost view
  /// sits below every epoch a simulated steal may have pushed.
  void insert_base(ReducerId h, void* view) {
    RADER_DCHECK(!stack_.empty());
    stack_.front().views[h] = view;
  }

  /// Remove every record of reducer `h`, returning its views bottom-to-top
  /// (oldest first) so the caller can fold them.  Used at reducer
  /// destruction.
  std::vector<void*> extract_all(ReducerId h);

  /// All epochs, bottom to top (for assertions and the recorder).
  const std::vector<Epoch>& epochs() const { return stack_; }

 private:
  std::vector<Epoch> stack_;
};

}  // namespace rader
