// Core identifier and event types shared by the runtime, the tool interface,
// the DAG recorder and the detectors.
//
// Terminology follows the paper:
//  * A *frame* is one Cilk-function instantiation.  Calling or spawning a
//    Cilk function creates a frame; the detectors assign each frame an ID.
//  * A *strand* is a maximal instruction sequence with no parallel control.
//    Strand boundaries are created by spawn, call, return, sync, simulated
//    steals and reduce operations.
//  * A *view ID* names one view of a reducer as managed by the (simulated)
//    runtime.  A fresh view ID is minted whenever a stolen continuation
//    would cause the runtime to create a new identity view (view invariant 2
//    in Section 5 of the paper).
#pragma once

#include <cstdint>
#include <string>

namespace rader {

using FrameId = std::uint32_t;
inline constexpr FrameId kInvalidFrame = static_cast<FrameId>(-1);

using StrandId = std::uint64_t;
inline constexpr StrandId kInvalidStrand = static_cast<StrandId>(-1);

using ViewId = std::uint64_t;
inline constexpr ViewId kInvalidView = static_cast<ViewId>(-1);

using ReducerId = std::uint32_t;
inline constexpr ReducerId kInvalidReducer = static_cast<ReducerId>(-1);

/// How a frame was entered.
enum class FrameKind : std::uint8_t {
  kRoot,     // the root frame created by rader::run
  kSpawned,  // entered via rader::spawn
  kCalled,   // entered via rader::call
  kReduce,   // a runtime-invoked Reduce operation (view-aware frame)
};

enum class AccessKind : std::uint8_t { kRead, kWrite };

/// Which reducer operation a reducer-related event describes.
///
/// The paper distinguishes *reducer-reads* — creating a reducer, resetting
/// its value, or querying its value — which Peer-Set checks, from the
/// view-operating functions (CreateIdentity / Update / Reduce), which do NOT
/// count as reducer-reads but produce *view-aware strands* that SP+ checks.
enum class ReducerOp : std::uint8_t {
  kCreate,          // reducer construction (a reducer-read)
  kSetValue,        // set_value / move_in (a reducer-read)
  kGetValue,        // get_value / move_out (a reducer-read)
  kDestroy,         // reducer destruction (a reducer-read)
  kUpdate,          // an Update access to the current view (view-aware)
  kCreateIdentity,  // runtime created an identity view (view-aware)
  kReduce,          // runtime invoked Reduce on two views (view-aware)
};

constexpr bool is_reducer_read(ReducerOp op) {
  return op == ReducerOp::kCreate || op == ReducerOp::kSetValue ||
         op == ReducerOp::kGetValue || op == ReducerOp::kDestroy;
}

/// A lightweight source tag carried through to race reports.  The benchmark
/// and example programs label their interesting operations so that reports
/// read like the paper's ("the Reduce of list_reducer races with scan_list").
struct SrcTag {
  const char* label = "";
};

}  // namespace rader
