// Public Cilk-style API.
//
// Programs are written against these free functions and run unchanged under
// (a) plain serial C++ (no engine installed), (b) the serial detection
// engine with simulated steals, and (c) the parallel work-stealing engine:
//
//   uint64_t x, y;
//   rader::spawn([&] { x = fib(n - 1); });   // cilk_spawn
//   y = fib(n - 2);
//   rader::sync();                           // cilk_sync
//
// rader::call marks an invocation of a Cilk function (one that may spawn) so
// that it gets its own frame, as the detection algorithms' bag bookkeeping
// assumes.  rader::parallel_for is cilk_for, expressed with spawn/sync.
//
// shadow_read / shadow_write are the memory-access annotations that stand in
// for the paper's ThreadSanitizer compiler instrumentation: programs under
// test annotate the shared-memory accesses they want checked.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "runtime/engine.hpp"
#include "runtime/types.hpp"

namespace rader {

/// cilk_spawn: `f` may execute in parallel with the caller's continuation.
template <typename F>
void spawn(F&& f) {
  Engine* e = Engine::current();
  if (e == nullptr) {
    f();  // serial projection
    return;
  }
  if (e->inline_tasks()) {
    e->spawn_inline(FnView(f));
  } else {
    e->spawn_task(Task(std::forward<F>(f)));
  }
}

/// Invoke a Cilk function as a called child frame.
template <typename F>
void call(F&& f) {
  Engine* e = Engine::current();
  if (e == nullptr) {
    f();
    return;
  }
  e->call_inline(FnView(f));
}

/// cilk_sync: control does not pass until all children spawned by the
/// current frame have returned (and their reducer views have been reduced).
inline void sync() {
  if (Engine* e = Engine::current()) e->sync();
}

/// Annotate a read of `size` bytes at `addr` (ThreadSanitizer-hook analog).
inline void shadow_read(const void* addr, std::size_t size, SrcTag tag = {}) {
  if (Engine* e = Engine::current()) {
    e->access(AccessKind::kRead, reinterpret_cast<std::uintptr_t>(addr), size,
              tag);
  }
}

/// Annotate a write of `size` bytes at `addr`.
inline void shadow_write(const void* addr, std::size_t size, SrcTag tag = {}) {
  if (Engine* e = Engine::current()) {
    e->access(AccessKind::kWrite, reinterpret_cast<std::uintptr_t>(addr), size,
              tag);
  }
}

/// Annotate that [addr, addr+size) was freed (the free()-hook analog):
/// recorded access history for the range is dropped so reusing allocations
/// do not inherit it.  Call from destructors of annotated heap structures.
inline void shadow_clear(const void* addr, std::size_t size) {
  if (Engine* e = Engine::current()) {
    e->clear_shadow(reinterpret_cast<std::uintptr_t>(addr), size);
  }
}

namespace detail {

template <typename Index, typename Body>
void pfor_impl(Index lo, Index hi, const Body& body, Index grain) {
  // cilk_for skeleton: halve the range, spawning the left half, until the
  // chunk is at most `grain` iterations; the local sync closes the frame's
  // sync block.
  while (hi - lo > grain) {
    const Index mid = lo + (hi - lo) / 2;
    spawn([&body, lo, mid, grain] { pfor_impl<Index, Body>(lo, mid, body, grain); });
    lo = mid;
  }
  for (Index i = lo; i < hi; ++i) body(i);
  sync();
}

}  // namespace detail

/// cilk_for: all iterations of `body(i)` for i in [lo, hi) may run in
/// parallel.  `grain` iterations run serially per leaf (0 = auto).
template <typename Index, typename Body>
void parallel_for(Index lo, Index hi, Body&& body, Index grain = 0) {
  if (hi <= lo) return;
  if (grain <= 0) {
    const Index n = hi - lo;
    grain = std::max<Index>(1, n / static_cast<Index>(512));
  }
  // The loop gets its own frame so that its implicit sync is local, exactly
  // like cilk_for.
  call([&] { detail::pfor_impl<Index, std::remove_reference_t<Body>>(
      lo, hi, body, grain); });
}

/// A flat variant that spawns one child per chunk inside a single sync block
/// of size `chunks` — used by the coverage experiments, where the sync-block
/// size K is the controlled variable.
template <typename Index, typename Body>
void parallel_for_flat(Index lo, Index hi, Body&& body, Index chunks) {
  if (hi <= lo) return;
  if (chunks <= 0) chunks = 1;
  call([&] {
    const Index n = hi - lo;
    const Index per = (n + chunks - 1) / chunks;
    for (Index c = lo; c < hi; c += per) {
      const Index b = c, e2 = std::min<Index>(hi, c + per);
      spawn([&body, b, e2] {
        for (Index i = b; i < e2; ++i) body(i);
      });
    }
    sync();
  });
}

}  // namespace rader
