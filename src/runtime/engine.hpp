// Abstract execution engine.
//
// All Cilk-style control constructs (rader::spawn / call / sync, the reducer
// operations, and the shadow-memory annotations) dispatch through the
// thread-current Engine.  Two engines exist:
//
//  * SerialEngine (runtime/serial_engine.hpp) — executes the computation in
//    its serial (depth-first) order, simulates steals and reduce operations
//    according to a steal specification, and streams instrumentation events
//    to a Tool.  This is the engine the Peer-Set and SP+ algorithms run on.
//
//  * ParallelEngine (sched/parallel_engine.hpp) — a work-stealing thread
//    pool for real parallel execution of the same programs (uninstrumented).
//
// When no engine is installed, the control constructs degrade to plain
// serial C++ execution and reducers behave as ordinary values — programs
// written against this API are valid serial programs by construction (the
// "serial projection" of Cilk).
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/task.hpp"
#include "runtime/types.hpp"

namespace rader {

class HyperobjectBase;

class Engine {
 public:
  virtual ~Engine() = default;

  // ---- Control constructs -------------------------------------------------

  /// True if spawn executes the child inline (serial engines); false if the
  /// caller must hand over an owning Task (parallel engines).
  virtual bool inline_tasks() const = 0;

  /// Spawn a child that is executed in place (serial engines only).
  virtual void spawn_inline(FnView fn) = 0;

  /// Spawn a child that the engine takes ownership of (parallel engines).
  virtual void spawn_task(Task task) = 0;

  /// Invoke a Cilk function as a *called* (not spawned) child frame.
  virtual void call_inline(FnView fn) = 0;

  /// cilk_sync: wait for (serially: account for) outstanding spawned
  /// children of the current frame; reduce outstanding reducer views.
  virtual void sync() = 0;

  // ---- Instrumentation ----------------------------------------------------

  /// Report an annotated memory access by the current strand.
  virtual void access(AccessKind kind, std::uintptr_t addr, std::size_t size,
                      SrcTag tag) = 0;

  /// Report that [addr, addr+size) was freed (shadow state must be dropped
  /// so a reusing allocation does not inherit stale access history).
  virtual void clear_shadow(std::uintptr_t addr, std::size_t size) = 0;

  // ---- Reducer support ----------------------------------------------------

  /// Register a reducer whose leftmost view is `leftmost_view`; invoked by
  /// reducer construction.  Emits the kCreate reducer-read.
  virtual void register_reducer(HyperobjectBase* r, void* leftmost_view,
                                SrcTag tag) = 0;

  /// Unregister at destruction; folds any outstanding views of `r` into its
  /// leftmost view.  Emits the kDestroy reducer-read.
  virtual void unregister_reducer(HyperobjectBase* r, SrcTag tag) = 0;

  /// The view of `r` for the current strand, creating an identity view
  /// lazily if the current epoch has none (the runtime's lazy view-creation
  /// semantics).  Never returns nullptr.
  virtual void* current_view(HyperobjectBase* r, SrcTag tag) = 0;

  /// Report a reducer-read (set_value / get_value) on `r`.
  virtual void reducer_read(HyperobjectBase* r, ReducerOp op, SrcTag tag) = 0;

  /// Bracket user Update code so its accesses are classified view-aware.
  virtual void begin_update(HyperobjectBase* r, SrcTag tag) = 0;
  virtual void end_update(HyperobjectBase* r) = 0;

  // ---- Installation -------------------------------------------------------

  /// The engine the current thread is executing under (nullptr if none).
  static Engine* current() { return tl_current_; }

  /// RAII installation of an engine as the thread-current one.
  class Scope {
   public:
    explicit Scope(Engine* e) : prev_(tl_current_) { tl_current_ = e; }
    ~Scope() { tl_current_ = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Engine* prev_;
  };

 private:
  static thread_local Engine* tl_current_;
};

}  // namespace rader
