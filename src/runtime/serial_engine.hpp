// SerialEngine: serial execution of a Cilk-style computation with simulated
// steals and reduce operations.
//
// "Like the Peer-Set and SP-bags algorithms, the SP+ algorithm is a serial
// algorithm that evaluates the strands of a Cilk computation in their serial
// order" — and Rader "triggers operations in the runtime system to simulate
// steals at program points specified in a given steal specification ...
// When the worker resumes the parent later, it acts as if it stole the
// parent, and appropriately creates a new reducer view for the continuation."
//
// This engine is that simulation:
//   * spawned and called children execute depth-first, in serial order;
//   * at each continuation point the steal specification is consulted; a
//     simulated steal mints a fresh view ID and pushes a view epoch;
//   * reduce operations execute at the points the specification requests
//     (plus, lazily, at the sync), as instrumented user code in frames of
//     kind kReduce — so determinacy races *inside* Reduce are observable;
//   * every frame implicitly syncs before returning (Cilk semantics), which
//     restores the view-epoch stack to its depth at frame entry.
//
// Every event is streamed to the attached Tool (detector / recorder / empty
// tool); with a null Tool the run is the "no instrumentation" baseline.
//
// Checkpoint / resume (the prefix-sharing sweep substrate, core/sweep.hpp):
// native C++ stacks cannot be snapshotted, so a "checkpoint" is a *recipe*
// for fast-forwarding, not a frozen continuation.  Specifications are pure
// functions of PointCtx, so a run is fully determined by the per-point
// decisions it took; the engine can therefore record a DecisionTrail during
// a run and later `resume_from()` a checkpoint by re-executing the program
// natively while (a) REPLAYING the recorded decisions instead of consulting
// the specification for the shared prefix and (b) SUPPRESSING all tool
// callbacks until the checkpointed point, where a forked detector
// (Tool::fork) takes over.  Engine-side state (frame IDs, view IDs, view
// epochs, reducer bindings) regenerates deterministically; the
// EngineCheckpoint snapshot exists to *verify* that regeneration at the
// hand-over point.  Detector work dominates instrumented runs, so skipping
// it across the prefix is where the sweep speedup comes from.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/hyperobject.hpp"
#include "runtime/view_epochs.hpp"
#include "spec/steal_spec.hpp"
#include "support/profile.hpp"
#include "tool/tool.hpp"

namespace rader {

/// One recorded continuation-point decision: the context the specification
/// saw (BEFORE the requested merges were applied), the merge count actually
/// performed (already clamped to ctx.live_epochs), and the steal verdict.
/// Trail index == continuation-point index, even when a user Reduce spawns
/// (nested points record after their enclosing point's slot is reserved).
struct PointDecision {
  spec::PointCtx ctx;
  std::uint32_t merges = 0;
  bool stole = false;
};

/// The decisions of one execution, in continuation-point order.  Two steal
/// specifications produce identical executions up to (excluding) the first
/// trail index where their decisions differ — computable OFFLINE, with no
/// program execution, because specs are pure functions of the recorded
/// contexts (core/sweep.cpp's divergence_depth).
using DecisionTrail = std::vector<PointDecision>;

/// Thrown by resume_from() when fast-forward re-execution fails to
/// regenerate the checkpointed state — the program is not a pure,
/// address-stable function of the steal decisions (it mutates captured
/// state across runs, or its heap layout drifts between executions, e.g.
/// reducer views landing at different addresses).  The engine is left
/// re-runnable; callers recover by running the specification fresh
/// (core/sweep.cpp falls back and counts kSweepResumeFallbacks).
struct ResumeDiverged {
  const char* reason;
};

struct EngineCheckpoint;  // below (needs SerialEngine's nested types)

class SerialEngine final : public Engine {
 public:
  /// Execution statistics, also used to size specification families
  /// (max_sync_block is the paper's K; max_spawn_depth bounds the Theorem 6
  /// depth classes).
  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t spawns = 0;
    std::uint64_t syncs = 0;
    std::uint64_t steals = 0;
    std::uint64_t reduces = 0;       // epoch merges (on_reduce events)
    std::uint64_t user_reduces = 0;  // user Reduce invocations (kReduce frames)
    std::uint64_t identities = 0;    // lazy Create-Identity view creations
    std::uint64_t accesses = 0;
    std::uint64_t reducer_ops = 0;
    std::uint32_t max_sync_block = 0;
    std::uint64_t max_spawn_depth = 0;
  };

  /// Frame bookkeeping (public so EngineCheckpoint can snapshot the stack).
  struct Frame {
    FrameId id = kInvalidFrame;
    FrameKind kind = FrameKind::kRoot;
    std::uint32_t sync_block = 0;  // syncs executed so far in this frame
    std::uint32_t ls = 0;          // local spawns since last sync
    std::uint64_t as = 0;          // unsynced ancestor spawns at entry
    std::uint32_t epoch_base = 0;  // view-epoch stack depth at entry
  };

  /// Fast-forward resume plan: re-execute the program, replaying
  /// `replay[0, replay_count)` instead of consulting the specification, and
  /// deliver tool callbacks only from continuation point `live_from` on
  /// (the point the detector fork was checkpointed at).  Requires
  /// 1 <= live_from <= replay_count; the attached tool must be a fork
  /// captured at point `live_from` of an execution whose decisions match
  /// `replay` (Tool::fork).  `expect`, when given, is verified against the
  /// regenerated engine state the moment point `live_from` begins.
  struct ResumePlan {
    const DecisionTrail* replay = nullptr;
    std::size_t replay_count = 0;
    std::size_t live_from = 0;
    const EngineCheckpoint* expect = nullptr;
  };

  /// `tool` may be nullptr (uninstrumented baseline); `steal_spec` may be
  /// nullptr (equivalent to spec::NoSteal).
  explicit SerialEngine(Tool* tool = nullptr,
                        const spec::StealSpec* steal_spec = nullptr)
      : tool_(tool), spec_(steal_spec) {}

  /// Execute `root` as the root frame of a computation.
  void run(FnView root);

  /// Execute `root` as a fast-forwarded continuation of a checkpointed
  /// execution (see the file comment and ResumePlan).  The run is
  /// byte-for-byte equivalent — same frame/view IDs, same stats, same tool
  /// event suffix — to run() under a specification that takes `plan.replay`'s
  /// decisions at points [0, replay_count) (tests/sched/checkpoint_test).
  /// Throws ResumeDiverged (leaving the engine re-runnable) when the
  /// re-execution does not reproduce the recorded prefix — wrong decisions
  /// possible only for impure programs, or an access stream whose addresses
  /// drifted (verified against EngineCheckpoint::access_hash).  Identity
  /// views minted during the abandoned partial run are leaked, not
  /// destroyed: the engine cannot run user Reduce code mid-unwind.
  void resume_from(FnView root, const ResumePlan& plan);

  /// Record every continuation-point decision of subsequent runs into
  /// `sink` (nullptr = stop recording).  During resume_from, replayed
  /// points are NOT re-recorded; `sink` may alias `plan.replay`, in which
  /// case the trail extends past the replayed prefix in place.
  void set_decision_trail(DecisionTrail* sink) { trail_ = sink; }

  /// Hook invoked at the start of every continuation point whose events are
  /// live (always, for run(); from `live_from` on, for resume_from()) with
  /// the point index — the window where capture() may be called.
  void set_point_hook(std::function<void(std::size_t)> hook) {
    point_hook_ = std::move(hook);
  }

  /// Snapshot the engine state into `out`.  Only meaningful from a point
  /// hook: the snapshot then describes the state at the start of that
  /// continuation point, before its merges and steal decision.
  void capture(EngineCheckpoint* out) const;

  const Stats& stats() const { return stats_; }

  // ---- Engine interface ----
  bool inline_tasks() const override { return true; }
  void spawn_inline(FnView fn) override;
  void spawn_task(Task task) override { spawn_inline(FnView(task)); }
  void call_inline(FnView fn) override;
  void sync() override;
  void access(AccessKind kind, std::uintptr_t addr, std::size_t size,
              SrcTag tag) override;
  void clear_shadow(std::uintptr_t addr, std::size_t size) override;
  void register_reducer(HyperobjectBase* r, void* leftmost_view,
                        SrcTag tag) override;
  void unregister_reducer(HyperobjectBase* r, SrcTag tag) override;
  void* current_view(HyperobjectBase* r, SrcTag tag) override;
  void reducer_read(HyperobjectBase* r, ReducerOp op, SrcTag tag) override;
  void begin_update(HyperobjectBase* r, SrcTag tag) override;
  void end_update(HyperobjectBase* r) override;

 private:
  Frame& top() {
    RADER_DCHECK(!stack_.empty());
    return stack_.back();
  }

  std::uint32_t live_epochs(const Frame& f) const {
    return static_cast<std::uint32_t>(epochs_.size()) - f.epoch_base;
  }

  /// The tool to deliver events to right now: null while fast-forwarding a
  /// resumed prefix, the attached tool otherwise.
  Tool* live_tool() const { return live_ ? tool_ : nullptr; }

  void run_impl(FnView root, bool from_start);
  void go_live(std::size_t point);  // verify expect_, start delivering events
  void enter_frame(FrameKind kind);
  void leave_frame();
  void do_sync();
  void top_merge();  // pop newest epoch, run the reduce operations
  void run_user_reduce(ReducerId h, void* left, void* right);
  void continuation_point();  // spec consultation after a spawned child

  /// Bind `r` to this engine, assigning a dense ReducerId.  If the reducer
  /// was created before run() (so register_reducer never saw it), its
  /// leftmost view joins the base epoch.
  ReducerId bind(HyperobjectBase* r);

  Tool* tool_;
  const spec::StealSpec* spec_;
  ViewEpochs epochs_;
  std::vector<Frame> stack_;
  std::unordered_map<HyperobjectBase*, ReducerId> reducer_ids_;
  std::vector<HyperobjectBase*> reducers_;
  FrameId next_frame_ = 0;
  ViewId next_vid_ = 0;
  // Simulated-worker accounting for the trace subsystem: worker 0 runs the
  // root strand; each simulated steal hands the continuation to a fresh
  // worker id, exactly as a real scheduler would.  Only advanced while a
  // TraceScope is active.
  std::uint32_t next_sim_worker_ = 1;
  int view_aware_depth_ = 0;
  bool running_ = false;
  // Checkpoint/resume state (run() resets to the pass-through defaults).
  DecisionTrail* trail_ = nullptr;
  std::function<void(std::size_t)> point_hook_;
  const DecisionTrail* replay_ = nullptr;
  std::size_t replay_count_ = 0;
  std::size_t live_from_ = 0;
  const EngineCheckpoint* expect_ = nullptr;
  std::size_t point_index_ = 0;
  bool live_ = true;
  // Open "replay" profiler phase of a resumed run (support/profile.hpp):
  // the fast-forward interval spans run_impl entry to go_live, which no
  // single lexical scope covers, so the phase is opened/closed by hand —
  // close_replay_phase() runs at go_live and on the ResumeDiverged unwind.
  void close_replay_phase();
  prof::Profiler* replay_prof_ = nullptr;
  prof::Node* replay_node_ = nullptr;
  prof::Node* replay_parent_ = nullptr;
  std::uint64_t replay_t0_ = 0;
  // FNV-1a over the (kind, addr, size) access/clear stream delivered while a
  // tool is attached.  Captured into checkpoints and compared at go_live:
  // equal counts with drifted ADDRESSES (heap layout changing between runs)
  // would silently corrupt a forked detector's shadow state, so the hash is
  // what makes resume verification sound, not just plausible.
  std::uint64_t access_hash_ = 0;
  Stats stats_;

  void mix_hash(std::uint64_t v) {
    access_hash_ = (access_hash_ ^ v) * 0x100000001b3ULL;
  }
};

/// A copyable snapshot of the engine at the start of a continuation point:
/// the frame stack, the view-epoch structure (IDs plus which reducers hold
/// views in each epoch — the reducer-view map, minus the unportable raw
/// view pointers), and the ID allocators.  Captured via
/// SerialEngine::capture() from a point hook; consumed by
/// SerialEngine::resume_from() to VERIFY that fast-forward re-execution
/// regenerated the identical state before a forked detector takes over.
/// The "pending steal decisions" half of a checkpoint is the DecisionTrail
/// prefix [0, point) that accompanies it in the sweep scheduler.
struct EngineCheckpoint {
  std::size_t point = 0;  // continuation-point index captured at
  FrameId next_frame = 0;
  ViewId next_vid = 0;
  std::uint32_t next_sim_worker = 1;
  std::uint64_t access_hash = 0;  // hash of the access stream up to `point`
  SerialEngine::Stats stats;
  std::vector<SerialEngine::Frame> frames;  // the frame stack, bottom-up
  std::vector<ViewId> epoch_vids;           // view-epoch stack, bottom-up
  // Per epoch (parallel to epoch_vids): sorted IDs of reducers with a view
  // bound in that epoch.
  std::vector<std::vector<ReducerId>> epoch_reducers;
};

}  // namespace rader
