// SerialEngine: serial execution of a Cilk-style computation with simulated
// steals and reduce operations.
//
// "Like the Peer-Set and SP-bags algorithms, the SP+ algorithm is a serial
// algorithm that evaluates the strands of a Cilk computation in their serial
// order" — and Rader "triggers operations in the runtime system to simulate
// steals at program points specified in a given steal specification ...
// When the worker resumes the parent later, it acts as if it stole the
// parent, and appropriately creates a new reducer view for the continuation."
//
// This engine is that simulation:
//   * spawned and called children execute depth-first, in serial order;
//   * at each continuation point the steal specification is consulted; a
//     simulated steal mints a fresh view ID and pushes a view epoch;
//   * reduce operations execute at the points the specification requests
//     (plus, lazily, at the sync), as instrumented user code in frames of
//     kind kReduce — so determinacy races *inside* Reduce are observable;
//   * every frame implicitly syncs before returning (Cilk semantics), which
//     restores the view-epoch stack to its depth at frame entry.
//
// Every event is streamed to the attached Tool (detector / recorder / empty
// tool); with a null Tool the run is the "no instrumentation" baseline.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/hyperobject.hpp"
#include "runtime/view_epochs.hpp"
#include "spec/steal_spec.hpp"
#include "tool/tool.hpp"

namespace rader {

class SerialEngine final : public Engine {
 public:
  /// Execution statistics, also used to size specification families
  /// (max_sync_block is the paper's K; max_spawn_depth bounds the Theorem 6
  /// depth classes).
  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t spawns = 0;
    std::uint64_t syncs = 0;
    std::uint64_t steals = 0;
    std::uint64_t reduces = 0;       // epoch merges (on_reduce events)
    std::uint64_t user_reduces = 0;  // user Reduce invocations (kReduce frames)
    std::uint64_t identities = 0;    // lazy Create-Identity view creations
    std::uint64_t accesses = 0;
    std::uint64_t reducer_ops = 0;
    std::uint32_t max_sync_block = 0;
    std::uint64_t max_spawn_depth = 0;
  };

  /// `tool` may be nullptr (uninstrumented baseline); `steal_spec` may be
  /// nullptr (equivalent to spec::NoSteal).
  explicit SerialEngine(Tool* tool = nullptr,
                        const spec::StealSpec* steal_spec = nullptr)
      : tool_(tool), spec_(steal_spec) {}

  /// Execute `root` as the root frame of a computation.
  void run(FnView root);

  const Stats& stats() const { return stats_; }

  // ---- Engine interface ----
  bool inline_tasks() const override { return true; }
  void spawn_inline(FnView fn) override;
  void spawn_task(Task task) override { spawn_inline(FnView(task)); }
  void call_inline(FnView fn) override;
  void sync() override;
  void access(AccessKind kind, std::uintptr_t addr, std::size_t size,
              SrcTag tag) override;
  void clear_shadow(std::uintptr_t addr, std::size_t size) override;
  void register_reducer(HyperobjectBase* r, void* leftmost_view,
                        SrcTag tag) override;
  void unregister_reducer(HyperobjectBase* r, SrcTag tag) override;
  void* current_view(HyperobjectBase* r, SrcTag tag) override;
  void reducer_read(HyperobjectBase* r, ReducerOp op, SrcTag tag) override;
  void begin_update(HyperobjectBase* r, SrcTag tag) override;
  void end_update(HyperobjectBase* r) override;

 private:
  struct Frame {
    FrameId id = kInvalidFrame;
    FrameKind kind = FrameKind::kRoot;
    std::uint32_t sync_block = 0;  // syncs executed so far in this frame
    std::uint32_t ls = 0;          // local spawns since last sync
    std::uint64_t as = 0;          // unsynced ancestor spawns at entry
    std::uint32_t epoch_base = 0;  // view-epoch stack depth at entry
  };

  Frame& top() {
    RADER_DCHECK(!stack_.empty());
    return stack_.back();
  }

  std::uint32_t live_epochs(const Frame& f) const {
    return static_cast<std::uint32_t>(epochs_.size()) - f.epoch_base;
  }

  void enter_frame(FrameKind kind);
  void leave_frame();
  void do_sync();
  void top_merge();  // pop newest epoch, run the reduce operations
  void run_user_reduce(ReducerId h, void* left, void* right);
  void continuation_point();  // spec consultation after a spawned child

  /// Bind `r` to this engine, assigning a dense ReducerId.  If the reducer
  /// was created before run() (so register_reducer never saw it), its
  /// leftmost view joins the base epoch.
  ReducerId bind(HyperobjectBase* r);

  Tool* tool_;
  const spec::StealSpec* spec_;
  ViewEpochs epochs_;
  std::vector<Frame> stack_;
  std::unordered_map<HyperobjectBase*, ReducerId> reducer_ids_;
  std::vector<HyperobjectBase*> reducers_;
  FrameId next_frame_ = 0;
  ViewId next_vid_ = 0;
  // Simulated-worker accounting for the trace subsystem: worker 0 runs the
  // root strand; each simulated steal hands the continuation to a fresh
  // worker id, exactly as a real scheduler would.  Only advanced while a
  // TraceScope is active.
  std::uint32_t next_sim_worker_ = 1;
  int view_aware_depth_ = 0;
  bool running_ = false;
  Stats stats_;
};

}  // namespace rader
