#include "runtime/engine.hpp"

namespace rader {

thread_local Engine* Engine::tl_current_ = nullptr;

}  // namespace rader
