#include "runtime/serial_engine.hpp"

#include <algorithm>

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rader {

void SerialEngine::run(FnView root) {
  RADER_CHECK_MSG(!running_, "SerialEngine::run is not reentrant");
  running_ = true;
  Engine::Scope scope(this);

  stats_ = Stats{};
  next_frame_ = 0;
  next_vid_ = 0;
  view_aware_depth_ = 0;
  reducer_ids_.clear();
  reducers_.clear();

  if (tool_ != nullptr) tool_->on_run_begin();
  trace::set_worker(0);
  next_sim_worker_ = 1;
  trace::emit(trace::EventKind::kRunBegin, kInvalidFrame);
  epochs_.push(next_vid_++);  // base epoch (view ID 0)

  enter_frame(FrameKind::kRoot);
  root();
  leave_frame();

  RADER_CHECK(stack_.empty());
  RADER_CHECK(epochs_.size() == 1);
  // Entries left in the base epoch are reducers' leftmost views, owned by
  // the reducer objects themselves; simply drop the records.
  epochs_.pop();

  trace::emit(trace::EventKind::kRunEnd, kInvalidFrame, stats_.steals,
              stats_.reduces);
  if (tool_ != nullptr) tool_->on_run_end();
  running_ = false;
}

void SerialEngine::enter_frame(FrameKind kind) {
  Frame f;
  f.id = next_frame_++;
  f.kind = kind;
  FrameId parent_id = kInvalidFrame;
  if (!stack_.empty()) {
    const Frame& parent = stack_.back();
    f.as = parent.as + parent.ls;
    parent_id = parent.id;
  }
  f.epoch_base = static_cast<std::uint32_t>(epochs_.size());
  stack_.push_back(f);
  ++stats_.frames;
  trace::emit(trace::EventKind::kFrameEnter, f.id, parent_id,
              epochs_.empty() ? 0 : epochs_.top_vid(),
              static_cast<std::uint8_t>(kind));
  if (tool_ != nullptr) {
    tool_->on_frame_enter(f.id, parent_id, kind, epochs_.top_vid());
  }
}

void SerialEngine::leave_frame() {
  do_sync();  // the implicit cilk_sync before every return
  const Frame f = stack_.back();
  stack_.pop_back();
  RADER_CHECK_MSG(epochs_.size() == f.epoch_base,
                  "view epochs leaked across a frame boundary");
  const FrameId parent_id = stack_.empty() ? kInvalidFrame : stack_.back().id;
  trace::emit(trace::EventKind::kFrameReturn, f.id, parent_id, 0,
              static_cast<std::uint8_t>(f.kind));
  if (tool_ != nullptr) tool_->on_frame_return(f.id, parent_id, f.kind);
}

void SerialEngine::spawn_inline(FnView fn) {
  RADER_CHECK_MSG(running_, "spawn outside of rader::run");
  {
    Frame& parent = top();
    parent.ls += 1;
    ++stats_.spawns;
    stats_.max_spawn_depth =
        std::max(stats_.max_spawn_depth, parent.as + parent.ls);
  }
  enter_frame(FrameKind::kSpawned);
  fn();
  leave_frame();
  continuation_point();
}

void SerialEngine::continuation_point() {
  if (spec_ == nullptr) return;
  Frame& parent = top();
  spec::PointCtx ctx;
  ctx.frame = parent.id;
  ctx.sync_block = parent.sync_block;
  ctx.cont_index = parent.ls - 1;
  ctx.spawn_depth = parent.as + parent.ls;
  ctx.live_epochs = live_epochs(parent);

  // Reduce operations the specification wants *before* the steal decision:
  // this is how a spec shapes the reduce tree (Theorem 7 construction).
  std::uint32_t merges = std::min(spec_->merges_now(ctx), ctx.live_epochs);
  while (merges-- > 0) top_merge();

  ctx.live_epochs = live_epochs(top());
  if (spec_->steal(ctx)) {
    const ViewId vid = next_vid_++;
    epochs_.push(vid);
    ++stats_.steals;
    if (trace::enabled()) {
      // The continuation migrates to a fresh simulated worker; the steal
      // event lands on the thief's track.
      trace::set_worker(next_sim_worker_++);
      trace::emit(trace::EventKind::kSteal, top().id, ctx.cont_index, vid);
    }
    if (tool_ != nullptr) tool_->on_steal(top().id, ctx.cont_index, vid);
  }
}

void SerialEngine::call_inline(FnView fn) {
  RADER_CHECK_MSG(running_, "call outside of rader::run");
  enter_frame(FrameKind::kCalled);
  fn();
  leave_frame();
}

void SerialEngine::sync() {
  if (!running_) return;  // serial fallback: sync is a no-op
  do_sync();
}

void SerialEngine::do_sync() {
  {
    Frame& f = top();
    stats_.max_sync_block = std::max(stats_.max_sync_block, f.ls);
    if (f.ls == 0 && live_epochs(f) == 0) return;  // no-op sync
  }
  // All views created in this sync block must be reduced before the sync
  // strand executes (view invariant 3): fold the remaining epochs.
  while (live_epochs(top()) > 0) top_merge();
  Frame& f = top();
  f.ls = 0;
  f.sync_block += 1;
  ++stats_.syncs;
  trace::emit(trace::EventKind::kSync, f.id);
  if (tool_ != nullptr) tool_->on_sync(f.id);
}

void SerialEngine::top_merge() {
  metrics::PhaseTimer timer(metrics::Phase::kReduce);
  const FrameId frame_id = top().id;
  ViewEpochs::Epoch dead = epochs_.pop();
  ++stats_.reduces;
  const ViewId left_vid = epochs_.top_vid();
  trace::emit(trace::EventKind::kReduceBegin, frame_id, left_vid, dead.vid);
  if (tool_ != nullptr) {
    tool_->on_reduce(frame_id, left_vid, dead.vid);
  }
  if (dead.views.empty()) {
    trace::emit(trace::EventKind::kReduceEnd, frame_id, left_vid, dead.vid);
    return;
  }

  // Deterministic reduce order across reducers: registration order.
  std::vector<std::pair<ReducerId, void*>> items(dead.views.begin(),
                                                 dead.views.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [h, view] : items) {
    if (void* left = epochs_.lookup_top(h)) {
      run_user_reduce(h, left, view);
      // The dominated view dies: drop its shadow so a reusing allocation
      // cannot inherit its access history.
      clear_shadow(reinterpret_cast<std::uintptr_t>(view),
                   reducers_[h]->hyper_view_size());
      trace::emit(trace::EventKind::kViewDestroy, frame_id, dead.vid, h);
      reducers_[h]->hyper_destroy(view);
    } else {
      // No view of h in the dominating epoch: the dominated view survives
      // unchanged (transplant) — no Reduce runs, matching the runtime.
      epochs_.insert_top(h, view);
    }
  }
  trace::emit(trace::EventKind::kReduceEnd, frame_id, left_vid, dead.vid);
}

void SerialEngine::run_user_reduce(ReducerId h, void* left, void* right) {
  HyperobjectBase* r = reducers_[h];
  ++stats_.user_reduces;
  // The Reduce operation executes as its own (view-aware) frame: its strand
  // must end up logically in series with the two merged view subsequences
  // but in parallel with reduce strands of other views (Section 6).
  enter_frame(FrameKind::kReduce);
  ++view_aware_depth_;
  trace::emit(trace::EventKind::kReducerOp, top().id, h, 0,
              static_cast<std::uint8_t>(ReducerOp::kReduce),
              r->hyper_tag().label);
  if (tool_ != nullptr) {
    tool_->on_reducer_op(ReducerOp::kReduce, h, r->hyper_tag());
  }
  r->hyper_reduce(left, right);
  --view_aware_depth_;
  leave_frame();
}

void SerialEngine::access(AccessKind kind, std::uintptr_t addr,
                          std::size_t size, SrcTag tag) {
  if (tool_ == nullptr || !running_) return;
  ++stats_.accesses;
  tool_->on_access(kind, addr, size, view_aware_depth_ > 0, epochs_.top_vid(),
                   tag);
}

void SerialEngine::clear_shadow(std::uintptr_t addr, std::size_t size) {
  if (tool_ == nullptr || !running_) return;
  tool_->on_clear(addr, size);
}

ReducerId SerialEngine::bind(HyperobjectBase* r) {
  auto it = reducer_ids_.find(r);
  if (it != reducer_ids_.end()) return it->second;
  // First contact with a reducer created before run(): its leftmost view
  // conceptually exists in the outermost (base) epoch.
  const auto h = static_cast<ReducerId>(reducers_.size());
  reducers_.push_back(r);
  reducer_ids_.emplace(r, h);
  RADER_CHECK(!epochs_.empty());
  if (epochs_.size() == 1) {
    epochs_.insert_top(h, r->hyper_leftmost());
  } else {
    // Stash the leftmost view in the base epoch without disturbing newer
    // epochs: updates in the current epoch still get a fresh identity view.
    epochs_.insert_base(h, r->hyper_leftmost());
  }
  return h;
}

void SerialEngine::register_reducer(HyperobjectBase* r, void* leftmost_view,
                                    SrcTag tag) {
  if (!running_) return;
  RADER_CHECK_MSG(reducer_ids_.find(r) == reducer_ids_.end(),
                  "reducer registered twice");
  const auto h = static_cast<ReducerId>(reducers_.size());
  reducers_.push_back(r);
  reducer_ids_.emplace(r, h);
  epochs_.insert_top(h, leftmost_view);
  ++stats_.reducer_ops;
  trace::emit(trace::EventKind::kViewCreate, top().id, epochs_.top_vid(), h,
              /*aux=*/0, tag.label);
  if (tool_ != nullptr) tool_->on_reducer_op(ReducerOp::kCreate, h, tag);
}

void SerialEngine::unregister_reducer(HyperobjectBase* r, SrcTag tag) {
  if (!running_) return;
  auto it = reducer_ids_.find(r);
  if (it == reducer_ids_.end()) return;
  const ReducerId h = it->second;
  ++stats_.reducer_ops;
  trace::emit(trace::EventKind::kViewDestroy,
              stack_.empty() ? kInvalidFrame : top().id, 0, h, /*aux=*/0,
              tag.label);
  if (tool_ != nullptr) tool_->on_reducer_op(ReducerOp::kDestroy, h, tag);
  // Fold any outstanding views into the leftmost one so the reducer's final
  // value is the serial-order reduction.  (Destroying a reducer while views
  // are outstanding is itself a view-read race — the kDestroy event above
  // lets Peer-Set flag it — but the engine must not leak or misfold.)
  std::vector<void*> views = epochs_.extract_all(h);
  if (!views.empty()) {
    void* left = views.front();
    for (std::size_t i = 1; i < views.size(); ++i) {
      ++view_aware_depth_;
      r->hyper_reduce(left, views[i]);
      --view_aware_depth_;
      clear_shadow(reinterpret_cast<std::uintptr_t>(views[i]),
                   r->hyper_view_size());
      r->hyper_destroy(views[i]);
    }
    RADER_CHECK_MSG(left == r->hyper_leftmost(),
                    "leftmost view lost during reducer teardown");
  }
  // The leftmost view's storage dies with the reducer: drop its shadow so a
  // later object reusing the address (the next loop iteration's reducer on
  // the same stack slot, say) does not inherit its access history.
  clear_shadow(reinterpret_cast<std::uintptr_t>(r->hyper_leftmost()),
               r->hyper_view_size());
  reducer_ids_.erase(it);
  reducers_[h] = nullptr;
}

void* SerialEngine::current_view(HyperobjectBase* r, SrcTag tag) {
  RADER_CHECK(running_);
  const ReducerId h = bind(r);
  void* v = epochs_.lookup_top(h);
  if (v == nullptr) {
    // Lazy identity-view creation: the first Update access after a steal
    // creates a new identity view (view invariant 2).  CreateIdentity runs
    // user code and is a view-aware strand.
    ++view_aware_depth_;
    ++stats_.reducer_ops;
    ++stats_.identities;
    trace::emit(trace::EventKind::kViewCreate, top().id, epochs_.top_vid(), h,
                /*aux=*/1, tag.label);
    if (tool_ != nullptr) {
      tool_->on_reducer_op(ReducerOp::kCreateIdentity, h, tag);
    }
    v = r->hyper_create_identity();
    --view_aware_depth_;
    epochs_.insert_top(h, v);
  }
  return v;
}

void SerialEngine::reducer_read(HyperobjectBase* r, ReducerOp op, SrcTag tag) {
  if (!running_) return;
  const ReducerId h = bind(r);
  ++stats_.reducer_ops;
  trace::emit(trace::EventKind::kReducerOp, top().id, h, 0,
              static_cast<std::uint8_t>(op), tag.label);
  if (tool_ != nullptr) tool_->on_reducer_op(op, h, tag);
}

void SerialEngine::begin_update(HyperobjectBase* r, SrcTag tag) {
  RADER_CHECK(running_);
  const ReducerId h = bind(r);
  ++view_aware_depth_;
  ++stats_.reducer_ops;
  trace::emit(trace::EventKind::kReducerOp, top().id, h, 0,
              static_cast<std::uint8_t>(ReducerOp::kUpdate), tag.label);
  if (tool_ != nullptr) tool_->on_reducer_op(ReducerOp::kUpdate, h, tag);
}

void SerialEngine::end_update(HyperobjectBase*) {
  RADER_DCHECK(view_aware_depth_ > 0);
  --view_aware_depth_;
}

}  // namespace rader
