#include "runtime/serial_engine.hpp"

#include <algorithm>

#include "runtime/view_arena.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rader {

void SerialEngine::run(FnView root) {
  replay_ = nullptr;
  replay_count_ = 0;
  live_from_ = 0;
  expect_ = nullptr;
  run_impl(root, /*from_start=*/true);
}

void SerialEngine::resume_from(FnView root, const ResumePlan& plan) {
  RADER_CHECK_MSG(plan.replay != nullptr, "resume plan without a trail");
  RADER_CHECK_MSG(plan.replay_count <= plan.replay->size(),
                  "resume plan replays beyond its trail");
  // live_from == 0 would mean "deliver everything", i.e. a fresh run whose
  // tool must receive on_run_begin — call run() for that.
  RADER_CHECK_MSG(plan.live_from >= 1 && plan.live_from <= plan.replay_count,
                  "resume plan live_from out of range");
  replay_ = plan.replay;
  replay_count_ = plan.replay_count;
  live_from_ = plan.live_from;
  expect_ = plan.expect;
  try {
    run_impl(root, /*from_start=*/false);
  } catch (const ResumeDiverged&) {
    // The throw unwound through live user frames, skipping all the frame /
    // epoch bookkeeping below the throw point: restore the engine to a
    // runnable state by hand.  Identity views minted by the abandoned
    // partial run are leaked — Reduce cannot run mid-unwind.
    close_replay_phase();
    running_ = false;
    stack_.clear();
    epochs_ = ViewEpochs();
    view_aware_depth_ = 0;
    replay_ = nullptr;
    replay_count_ = 0;
    live_from_ = 0;
    expect_ = nullptr;
    throw;
  }
}

void SerialEngine::run_impl(FnView root, bool from_start) {
  RADER_CHECK_MSG(!running_, "SerialEngine::run is not reentrant");
#if defined(__GNUC__)
  // Canonicalize the stack position before entering user code.  Fresh and
  // resumed runs reach this point through different call chains (run() vs
  // resume_from()), so without this the program's stack locals would sit at
  // slightly shifted addresses in otherwise identical executions — enough
  // to fail resume verification ("access addresses drifted") and drive
  // every prefix-sweep resume into fallback.  Padding to a 64 KiB boundary
  // makes the frame user code runs in independent of the entry point.  The
  // frame address is 16-aligned, so the alloca amount is exact.
  void* stack_pad = __builtin_alloca(
      reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0)) & 0xFFF0u);
  asm volatile("" : : "r"(stack_pad));  // the pad must not be elided
#endif
  running_ = true;
  Engine::Scope scope(this);

  stats_ = Stats{};
  access_hash_ = 0;
  // Rewind the identity-view arena so this run's view #j lands at the same
  // address as every other run's view #j (see runtime/view_arena.hpp); all
  // views from the previous run were folded away by its end.
  view_arena::rewind();
  next_frame_ = 0;
  next_vid_ = 0;
  view_aware_depth_ = 0;
  point_index_ = 0;
  live_ = from_start;
  reducer_ids_.clear();
  reducers_.clear();

  // A resumed run's fast-forward interval (entry to go_live) is the
  // profiler's "replay" phase; no lexical scope covers it, so open it by
  // hand here and close it in go_live / on the ResumeDiverged unwind.
  if (!from_start) {
    if (prof::Profiler* p = prof::current()) {
      replay_prof_ = p;
      replay_parent_ = p->current_node();
      replay_node_ = p->enter("replay");
      replay_t0_ = metrics::now_nanos();
    }
  }

  // A resumed run's tool is a detector fork that already holds the prefix
  // state; on_run_begin (which resets detectors) is for fresh runs only.
  if (Tool* t = live_tool()) t->on_run_begin();
  trace::set_worker(0);
  next_sim_worker_ = 1;
  trace::emit(trace::EventKind::kRunBegin, kInvalidFrame);
  epochs_.push(next_vid_++);  // base epoch (view ID 0)

  enter_frame(FrameKind::kRoot);
  root();
  leave_frame();

  RADER_CHECK(stack_.empty());
  RADER_CHECK(epochs_.size() == 1);
  // Entries left in the base epoch are reducers' leftmost views, owned by
  // the reducer objects themselves; simply drop the records.
  epochs_.pop();

  if (!live_) {
    throw ResumeDiverged{"resume plan's live_from point was never reached"};
  }
  trace::emit(trace::EventKind::kRunEnd, kInvalidFrame, stats_.steals,
              stats_.reduces);
  if (tool_ != nullptr) tool_->on_run_end();
  running_ = false;
  // A later plain run() starts from scratch.
  replay_ = nullptr;
  replay_count_ = 0;
  live_from_ = 0;
  expect_ = nullptr;
}

void SerialEngine::capture(EngineCheckpoint* out) const {
  RADER_DCHECK(out != nullptr);
  RADER_CHECK_MSG(point_index_ > 0,
                  "capture() outside a continuation-point hook");
  out->point = point_index_ - 1;
  out->next_frame = next_frame_;
  out->next_vid = next_vid_;
  out->next_sim_worker = next_sim_worker_;
  out->access_hash = access_hash_;
  out->stats = stats_;
  out->frames = stack_;
  out->epoch_vids.clear();
  out->epoch_reducers.clear();
  for (const ViewEpochs::Epoch& e : epochs_.epochs()) {
    out->epoch_vids.push_back(e.vid);
    std::vector<ReducerId> rs;
    rs.reserve(e.views.size());
    for (const auto& [h, view] : e.views) rs.push_back(h);
    std::sort(rs.begin(), rs.end());
    out->epoch_reducers.push_back(std::move(rs));
  }
}

void SerialEngine::close_replay_phase() {
  if (replay_prof_ == nullptr) return;
  replay_prof_->leave(replay_node_, replay_parent_,
                      metrics::now_nanos() - replay_t0_);
  replay_prof_ = nullptr;
  replay_node_ = nullptr;
  replay_parent_ = nullptr;
}

void SerialEngine::go_live(std::size_t point) {
  close_replay_phase();
  live_ = true;
  if (expect_ == nullptr) return;
  // Fast-forward re-execution must have regenerated the checkpointed state
  // bit-for-bit; anything else means the program is not a pure function of
  // the steal decisions (e.g. it branches on wall-clock or on view
  // addresses) and the prefix-sharing sweep would silently miscompare.
  const EngineCheckpoint& e = *expect_;
  RADER_CHECK_MSG(e.point == point, "checkpoint verifies a different point");
  if (!(e.next_frame == next_frame_ && e.next_vid == next_vid_ &&
        e.next_sim_worker == next_sim_worker_)) {
    throw ResumeDiverged{"ID allocators mismatch the checkpoint"};
  }
  if (!(e.stats.frames == stats_.frames && e.stats.spawns == stats_.spawns &&
        e.stats.syncs == stats_.syncs && e.stats.steals == stats_.steals &&
        e.stats.reduces == stats_.reduces &&
        e.stats.user_reduces == stats_.user_reduces &&
        e.stats.identities == stats_.identities &&
        e.stats.accesses == stats_.accesses &&
        e.stats.reducer_ops == stats_.reducer_ops)) {
    throw ResumeDiverged{"statistics mismatch the checkpoint"};
  }
  // Equal counts are not enough: the forked detector's shadow state is keyed
  // on raw addresses, so the re-executed prefix must touch the SAME bytes as
  // the original run.  Heap-allocated state (reducer identity views above
  // all) can legitimately land elsewhere when the allocator's free lists
  // differ between runs; resuming anyway would bolt a suffix at new
  // addresses onto prefix history at old ones — stale entries then collide
  // with recycled allocations and fabricate races.
  if (e.access_hash != access_hash_) {
    throw ResumeDiverged{"access addresses drifted between runs"};
  }
  if (e.frames.size() != stack_.size()) {
    throw ResumeDiverged{"frame stack depth mismatch"};
  }
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    const Frame& a = e.frames[i];
    const Frame& b = stack_[i];
    if (!(a.id == b.id && a.kind == b.kind && a.sync_block == b.sync_block &&
          a.ls == b.ls && a.as == b.as && a.epoch_base == b.epoch_base)) {
      throw ResumeDiverged{"frame stack mismatch"};
    }
  }
  const auto& epochs = epochs_.epochs();
  if (e.epoch_vids.size() != epochs.size()) {
    throw ResumeDiverged{"view-epoch stack depth mismatch"};
  }
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    if (e.epoch_vids[i] != epochs[i].vid) {
      throw ResumeDiverged{"view IDs mismatch the checkpoint"};
    }
    std::vector<ReducerId> rs;
    rs.reserve(epochs[i].views.size());
    for (const auto& [h, view] : epochs[i].views) rs.push_back(h);
    std::sort(rs.begin(), rs.end());
    if (rs != e.epoch_reducers[i]) {
      throw ResumeDiverged{"reducer-view map mismatch"};
    }
  }
  // The point hook may grow the caller's checkpoint storage, so the pointer
  // into it must not outlive this verification.
  expect_ = nullptr;
}

void SerialEngine::enter_frame(FrameKind kind) {
  Frame f;
  f.id = next_frame_++;
  f.kind = kind;
  FrameId parent_id = kInvalidFrame;
  if (!stack_.empty()) {
    const Frame& parent = stack_.back();
    f.as = parent.as + parent.ls;
    parent_id = parent.id;
  }
  f.epoch_base = static_cast<std::uint32_t>(epochs_.size());
  stack_.push_back(f);
  ++stats_.frames;
  trace::emit(trace::EventKind::kFrameEnter, f.id, parent_id,
              epochs_.empty() ? 0 : epochs_.top_vid(),
              static_cast<std::uint8_t>(kind));
  if (Tool* t = live_tool()) {
    t->on_frame_enter(f.id, parent_id, kind, epochs_.top_vid());
  }
}

void SerialEngine::leave_frame() {
  do_sync();  // the implicit cilk_sync before every return
  const Frame f = stack_.back();
  stack_.pop_back();
  RADER_CHECK_MSG(epochs_.size() == f.epoch_base,
                  "view epochs leaked across a frame boundary");
  const FrameId parent_id = stack_.empty() ? kInvalidFrame : stack_.back().id;
  trace::emit(trace::EventKind::kFrameReturn, f.id, parent_id, 0,
              static_cast<std::uint8_t>(f.kind));
  if (Tool* t = live_tool()) t->on_frame_return(f.id, parent_id, f.kind);
}

void SerialEngine::spawn_inline(FnView fn) {
  RADER_CHECK_MSG(running_, "spawn outside of rader::run");
  {
    Frame& parent = top();
    parent.ls += 1;
    ++stats_.spawns;
    stats_.max_spawn_depth =
        std::max(stats_.max_spawn_depth, parent.as + parent.ls);
  }
  enter_frame(FrameKind::kSpawned);
  fn();
  leave_frame();
  continuation_point();
}

void SerialEngine::continuation_point() {
  if (spec_ == nullptr && replay_ == nullptr) return;
  const std::size_t idx = point_index_++;
  if (!live_ && idx == live_from_) go_live(idx);
  if (live_ && point_hook_) point_hook_(idx);

  spec::PointCtx ctx;
  {
    const Frame& parent = top();
    ctx.frame = parent.id;
    ctx.sync_block = parent.sync_block;
    ctx.cont_index = parent.ls - 1;
    ctx.spawn_depth = parent.as + parent.ls;
    ctx.live_epochs = live_epochs(parent);
  }

  // Reduce operations the specification wants *before* the steal decision:
  // this is how a spec shapes the reduce tree (Theorem 7 construction).
  const bool replayed = idx < replay_count_;
  std::uint32_t merges = 0;
  bool stole = false;
  std::size_t rec_slot = 0;
  const bool record = trail_ != nullptr && !replayed;
  if (replayed) {
    // Replay is only sound if the recorded execution and this one agree on
    // everything the decision depended on.
    const PointDecision& d = (*replay_)[idx];
    if (!(d.ctx.frame == ctx.frame && d.ctx.sync_block == ctx.sync_block &&
          d.ctx.cont_index == ctx.cont_index &&
          d.ctx.spawn_depth == ctx.spawn_depth &&
          d.ctx.live_epochs == ctx.live_epochs)) {
      throw ResumeDiverged{"replay diverged from the recorded execution"};
    }
    merges = d.merges;
    stole = d.stole;
  } else {
    merges = spec_ == nullptr
                 ? 0
                 : std::min(spec_->merges_now(ctx), ctx.live_epochs);
    if (record) {
      // Reserve the slot NOW so trail index == point index even when a user
      // Reduce below spawns (nested points record after this one); the steal
      // verdict is patched in once known.  The push may grow a trail that
      // aliases `replay_`, but all replayed slots were read before the first
      // recorded one, so no reference is invalidated.
      rec_slot = trail_->size();
      RADER_CHECK_MSG(rec_slot == idx, "decision trail out of step");
      trail_->push_back(PointDecision{ctx, merges, false});
    }
  }
  for (std::uint32_t m = merges; m > 0; --m) top_merge();

  // Re-resolve the parent: nested Reduce frames may have grown stack_.
  ctx.live_epochs = live_epochs(top());
  if (!replayed) {
    stole = spec_ != nullptr && spec_->steal(ctx);
    if (record) (*trail_)[rec_slot].stole = stole;
  }
  if (stole) {
    const ViewId vid = next_vid_++;
    epochs_.push(vid);
    ++stats_.steals;
    if (trace::enabled()) {
      // The continuation migrates to a fresh simulated worker; the steal
      // event lands on the thief's track.
      trace::set_worker(next_sim_worker_++);
      trace::emit(trace::EventKind::kSteal, top().id, ctx.cont_index, vid);
    }
    if (Tool* t = live_tool()) t->on_steal(top().id, ctx.cont_index, vid);
  }
}

void SerialEngine::call_inline(FnView fn) {
  RADER_CHECK_MSG(running_, "call outside of rader::run");
  enter_frame(FrameKind::kCalled);
  fn();
  leave_frame();
}

void SerialEngine::sync() {
  if (!running_) return;  // serial fallback: sync is a no-op
  do_sync();
}

void SerialEngine::do_sync() {
  {
    Frame& f = top();
    stats_.max_sync_block = std::max(stats_.max_sync_block, f.ls);
    if (f.ls == 0 && live_epochs(f) == 0) return;  // no-op sync
  }
  // All views created in this sync block must be reduced before the sync
  // strand executes (view invariant 3): fold the remaining epochs.
  while (live_epochs(top()) > 0) top_merge();
  Frame& f = top();
  f.ls = 0;
  f.sync_block += 1;
  ++stats_.syncs;
  trace::emit(trace::EventKind::kSync, f.id);
  if (Tool* t = live_tool()) t->on_sync(f.id);
}

void SerialEngine::top_merge() {
  // One clock pair feeds both the kReduce phase accumulator and the
  // per-delivery latency histogram, covering the early-return path too.
  struct ReduceTiming {
    metrics::Registry* reg;
    std::uint64_t t0;
    ReduceTiming()
        : reg(metrics::current()),
          t0(reg != nullptr ? metrics::now_nanos() : 0) {}
    ~ReduceTiming() {
      if (reg == nullptr) return;
      const std::uint64_t d = metrics::now_nanos() - t0;
      reg->add_phase_nanos(metrics::Phase::kReduce, d);
      reg->record(metrics::Histogram::kReduceNanos, d);
    }
  } timing;
  const FrameId frame_id = top().id;
  ViewEpochs::Epoch dead = epochs_.pop();
  ++stats_.reduces;
  const ViewId left_vid = epochs_.top_vid();
  trace::emit(trace::EventKind::kReduceBegin, frame_id, left_vid, dead.vid);
  if (Tool* t = live_tool()) {
    t->on_reduce(frame_id, left_vid, dead.vid);
  }
  if (dead.views.empty()) {
    trace::emit(trace::EventKind::kReduceEnd, frame_id, left_vid, dead.vid);
    return;
  }

  // Deterministic reduce order across reducers: registration order.
  std::vector<std::pair<ReducerId, void*>> items(dead.views.begin(),
                                                 dead.views.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [h, view] : items) {
    if (void* left = epochs_.lookup_top(h)) {
      run_user_reduce(h, left, view);
      // The dominated view dies: drop its shadow so a reusing allocation
      // cannot inherit its access history.
      clear_shadow(reinterpret_cast<std::uintptr_t>(view),
                   reducers_[h]->hyper_view_size());
      trace::emit(trace::EventKind::kViewDestroy, frame_id, dead.vid, h);
      reducers_[h]->hyper_destroy(view);
    } else {
      // No view of h in the dominating epoch: the dominated view survives
      // unchanged (transplant) — no Reduce runs, matching the runtime.
      epochs_.insert_top(h, view);
    }
  }
  trace::emit(trace::EventKind::kReduceEnd, frame_id, left_vid, dead.vid);
}

void SerialEngine::run_user_reduce(ReducerId h, void* left, void* right) {
  HyperobjectBase* r = reducers_[h];
  ++stats_.user_reduces;
  // The Reduce operation executes as its own (view-aware) frame: its strand
  // must end up logically in series with the two merged view subsequences
  // but in parallel with reduce strands of other views (Section 6).
  enter_frame(FrameKind::kReduce);
  ++view_aware_depth_;
  trace::emit(trace::EventKind::kReducerOp, top().id, h, 0,
              static_cast<std::uint8_t>(ReducerOp::kReduce),
              r->hyper_tag().label);
  if (Tool* t = live_tool()) {
    t->on_reducer_op(ReducerOp::kReduce, h, r->hyper_tag());
  }
  r->hyper_reduce(left, right);
  --view_aware_depth_;
  leave_frame();
}

void SerialEngine::access(AccessKind kind, std::uintptr_t addr,
                          std::size_t size, SrcTag tag) {
  if (tool_ == nullptr || !running_) return;
  // Counted and hashed whenever a tool is attached — even while a resumed
  // prefix is suppressing delivery — so stats and the address-stream hash
  // match the checkpointed original run.
  ++stats_.accesses;
  mix_hash(static_cast<std::uint64_t>(addr));
  mix_hash((static_cast<std::uint64_t>(size) << 2) |
           static_cast<std::uint64_t>(kind));
  if (Tool* t = live_tool()) {
    t->on_access(kind, addr, size, view_aware_depth_ > 0, epochs_.top_vid(),
                 tag);
  }
}

void SerialEngine::clear_shadow(std::uintptr_t addr, std::size_t size) {
  if (tool_ == nullptr || !running_) return;
  mix_hash(~static_cast<std::uint64_t>(addr));
  mix_hash(static_cast<std::uint64_t>(size));
  if (Tool* t = live_tool()) t->on_clear(addr, size);
}

ReducerId SerialEngine::bind(HyperobjectBase* r) {
  auto it = reducer_ids_.find(r);
  if (it != reducer_ids_.end()) return it->second;
  // First contact with a reducer created before run(): its leftmost view
  // conceptually exists in the outermost (base) epoch.
  const auto h = static_cast<ReducerId>(reducers_.size());
  reducers_.push_back(r);
  reducer_ids_.emplace(r, h);
  RADER_CHECK(!epochs_.empty());
  if (epochs_.size() == 1) {
    epochs_.insert_top(h, r->hyper_leftmost());
  } else {
    // Stash the leftmost view in the base epoch without disturbing newer
    // epochs: updates in the current epoch still get a fresh identity view.
    epochs_.insert_base(h, r->hyper_leftmost());
  }
  return h;
}

void SerialEngine::register_reducer(HyperobjectBase* r, void* leftmost_view,
                                    SrcTag tag) {
  if (!running_) return;
  RADER_CHECK_MSG(reducer_ids_.find(r) == reducer_ids_.end(),
                  "reducer registered twice");
  const auto h = static_cast<ReducerId>(reducers_.size());
  reducers_.push_back(r);
  reducer_ids_.emplace(r, h);
  epochs_.insert_top(h, leftmost_view);
  ++stats_.reducer_ops;
  trace::emit(trace::EventKind::kViewCreate, top().id, epochs_.top_vid(), h,
              /*aux=*/0, tag.label);
  if (Tool* t = live_tool()) t->on_reducer_op(ReducerOp::kCreate, h, tag);
}

void SerialEngine::unregister_reducer(HyperobjectBase* r, SrcTag tag) {
  if (!running_) return;
  auto it = reducer_ids_.find(r);
  if (it == reducer_ids_.end()) return;
  const ReducerId h = it->second;
  ++stats_.reducer_ops;
  trace::emit(trace::EventKind::kViewDestroy,
              stack_.empty() ? kInvalidFrame : top().id, 0, h, /*aux=*/0,
              tag.label);
  if (Tool* t = live_tool()) t->on_reducer_op(ReducerOp::kDestroy, h, tag);
  // Fold any outstanding views into the leftmost one so the reducer's final
  // value is the serial-order reduction.  (Destroying a reducer while views
  // are outstanding is itself a view-read race — the kDestroy event above
  // lets Peer-Set flag it — but the engine must not leak or misfold.)
  std::vector<void*> views = epochs_.extract_all(h);
  if (!views.empty()) {
    void* left = views.front();
    for (std::size_t i = 1; i < views.size(); ++i) {
      ++view_aware_depth_;
      r->hyper_reduce(left, views[i]);
      --view_aware_depth_;
      clear_shadow(reinterpret_cast<std::uintptr_t>(views[i]),
                   r->hyper_view_size());
      r->hyper_destroy(views[i]);
    }
    RADER_CHECK_MSG(left == r->hyper_leftmost(),
                    "leftmost view lost during reducer teardown");
  }
  // The leftmost view's storage dies with the reducer: drop its shadow so a
  // later object reusing the address (the next loop iteration's reducer on
  // the same stack slot, say) does not inherit its access history.
  clear_shadow(reinterpret_cast<std::uintptr_t>(r->hyper_leftmost()),
               r->hyper_view_size());
  reducer_ids_.erase(it);
  reducers_[h] = nullptr;
}

void* SerialEngine::current_view(HyperobjectBase* r, SrcTag tag) {
  RADER_CHECK(running_);
  const ReducerId h = bind(r);
  void* v = epochs_.lookup_top(h);
  if (v == nullptr) {
    // Lazy identity-view creation: the first Update access after a steal
    // creates a new identity view (view invariant 2).  CreateIdentity runs
    // user code and is a view-aware strand.
    ++view_aware_depth_;
    ++stats_.reducer_ops;
    ++stats_.identities;
    trace::emit(trace::EventKind::kViewCreate, top().id, epochs_.top_vid(), h,
                /*aux=*/1, tag.label);
    if (Tool* t = live_tool()) {
      t->on_reducer_op(ReducerOp::kCreateIdentity, h, tag);
    }
    v = r->hyper_create_identity();
    --view_aware_depth_;
    epochs_.insert_top(h, v);
  }
  return v;
}

void SerialEngine::reducer_read(HyperobjectBase* r, ReducerOp op, SrcTag tag) {
  if (!running_) return;
  const ReducerId h = bind(r);
  ++stats_.reducer_ops;
  trace::emit(trace::EventKind::kReducerOp, top().id, h, 0,
              static_cast<std::uint8_t>(op), tag.label);
  if (Tool* t = live_tool()) t->on_reducer_op(op, h, tag);
}

void SerialEngine::begin_update(HyperobjectBase* r, SrcTag tag) {
  RADER_CHECK(running_);
  const ReducerId h = bind(r);
  ++view_aware_depth_;
  ++stats_.reducer_ops;
  trace::emit(trace::EventKind::kReducerOp, top().id, h, 0,
              static_cast<std::uint8_t>(ReducerOp::kUpdate), tag.label);
  if (Tool* t = live_tool()) t->on_reducer_op(ReducerOp::kUpdate, h, tag);
}

void SerialEngine::end_update(HyperobjectBase*) {
  RADER_DCHECK(view_aware_depth_ > 0);
  --view_aware_depth_;
}

}  // namespace rader
