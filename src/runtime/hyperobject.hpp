// Engine-facing view of a reducer hyperobject.
//
// The runtime manages reducer *views* without knowing their types: it needs
// to create identity views after simulated steals, reduce adjacent views
// (invoking user code), and destroy reduced-away views.  The typed
// rader::reducer<Monoid> template (src/reducers) implements this interface.
#pragma once

#include <cstddef>

#include "runtime/types.hpp"

namespace rader {

class HyperobjectBase {
 public:
  virtual ~HyperobjectBase() = default;

  /// Allocate and return a fresh identity view (the monoid's e).  Runs user
  /// code; the engine brackets the call as a view-aware strand.
  virtual void* hyper_create_identity() = 0;

  /// left = left ⊗ right.  Runs user code; the engine brackets the call as a
  /// view-aware (Reduce) strand.  `right` is NOT destroyed here.
  virtual void hyper_reduce(void* left, void* right) = 0;

  /// Destroy a view previously returned by hyper_create_identity().  Must
  /// never be called on the leftmost view (which the reducer object owns).
  /// Implementations need not release the storage: rader::reducer places
  /// views in the deterministic view arena (runtime/view_arena.hpp) so that
  /// re-executions reuse the same addresses, and only runs the destructor.
  virtual void hyper_destroy(void* view) = 0;

  /// The leftmost view — the storage owned by the reducer object itself,
  /// holding its initial (and eventually final) value.
  virtual void* hyper_leftmost() = 0;

  /// Byte footprint of one view object (the runtime clears this range's
  /// shadow when it destroys a view, so heap reuse cannot manufacture
  /// false races).  Views owning further heap should shadow_clear it in
  /// their own destructors.
  virtual std::size_t hyper_view_size() const = 0;

  /// Source tag used in race reports that mention this reducer.
  virtual SrcTag hyper_tag() const { return SrcTag{"reducer"}; }
};

}  // namespace rader
