// Convenience entry point: run a computation on a fresh serial engine.
#pragma once

#include "runtime/serial_engine.hpp"

namespace rader {

/// Execute `root` serially, streaming events to `tool` (may be null) and
/// simulating steals per `steal_spec` (null = no steals).  Returns the
/// engine's execution statistics.
inline SerialEngine::Stats run_serial(
    FnView root, Tool* tool = nullptr,
    const spec::StealSpec* steal_spec = nullptr) {
  SerialEngine engine(tool, steal_spec);
  engine.run(root);
  return engine.stats();
}

}  // namespace rader
