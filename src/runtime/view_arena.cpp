#include "runtime/view_arena.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/engine.hpp"
#include "support/common.hpp"
#include "support/metrics.hpp"

namespace rader::view_arena {
namespace {

constexpr std::size_t kBlockBytes = 1 << 14;

struct Arena {
  // Blocks are stable in memory (the vector holds owners, not storage), so
  // handed-out addresses survive vector growth and rewinds.
  std::vector<std::unique_ptr<std::byte[]>> blocks;
  std::size_t block = 0;   // index of the block being bumped
  std::size_t offset = 0;  // bump cursor within it
  std::size_t in_use = 0;
  // Rewind floor: everything below it was allocated outside a run and is
  // permanent (see the header).
  std::size_t floor_block = 0;
  std::size_t floor_offset = 0;
  std::size_t floor_in_use = 0;

  void* allocate(std::size_t size, std::size_t align) {
    RADER_CHECK_MSG(size <= kBlockBytes, "identity view exceeds arena block");
    RADER_DCHECK(align != 0 && (align & (align - 1)) == 0);
    for (;;) {
      if (block == blocks.size()) {
        blocks.push_back(std::make_unique<std::byte[]>(kBlockBytes));
      }
      std::byte* const base = blocks[block].get();
      const auto addr = reinterpret_cast<std::uintptr_t>(base) + offset;
      const std::size_t aligned =
          offset + ((align - (addr & (align - 1))) & (align - 1));
      if (aligned + size <= kBlockBytes) {
        offset = aligned + size;
        in_use += size;
        if (Engine::current() == nullptr) {
          // Outside-run allocation: promote to permanent.
          floor_block = block;
          floor_offset = offset;
          floor_in_use = in_use;
        }
        return base + aligned;
      }
      ++block;
      offset = 0;
    }
  }
};

thread_local Arena tl_arena;

}  // namespace

void* allocate(std::size_t size, std::size_t align) {
  void* p = tl_arena.allocate(size, align);
  metrics::gauge_set(metrics::Gauge::kArenaBytes,
                     static_cast<std::int64_t>(tl_arena.in_use));
  return p;
}

void rewind() {
  tl_arena.block = tl_arena.floor_block;
  tl_arena.offset = tl_arena.floor_offset;
  tl_arena.in_use = tl_arena.floor_in_use;
  metrics::gauge_set(metrics::Gauge::kArenaBytes,
                     static_cast<std::int64_t>(tl_arena.in_use));
}

std::size_t bytes_in_use() { return tl_arena.in_use; }

std::size_t permanent_bytes() { return tl_arena.floor_in_use; }

Scope::Scope()
    : block_(tl_arena.block),
      offset_(tl_arena.offset),
      in_use_(tl_arena.in_use),
      floor_block_(tl_arena.floor_block),
      floor_offset_(tl_arena.floor_offset),
      floor_in_use_(tl_arena.floor_in_use) {}

Scope::~Scope() {
  // Everything allocated (and promoted) inside the scope is dead by now:
  // hand its storage out again, including the floor range the scope's
  // outside-run allocations claimed.
  tl_arena.block = block_;
  tl_arena.offset = offset_;
  tl_arena.in_use = in_use_;
  tl_arena.floor_block = floor_block_;
  tl_arena.floor_offset = floor_offset_;
  tl_arena.floor_in_use = floor_in_use_;
}

}  // namespace rader::view_arena
