// Deterministic thread-local storage for reducer identity views.
//
// Identity views used to come from plain `new`, which hands out addresses at
// the mercy of the allocator's free lists — two executions with identical
// control flow could see their views at different addresses, differing only
// in where a previous run happened to leave the heap.  Detection never cared
// (each run's shadow state is self-consistent), but prefix-sharing sweeps do
// (core/sweep.hpp): resuming a run from a checkpointed detector fork splices
// a live suffix onto recorded prefix history KEYED ON ADDRESSES, so the
// re-executed prefix must touch the very same bytes as the original run
// (SerialEngine::go_live verifies exactly that and falls back otherwise).
//
// This arena makes view placement a pure function of allocation order: a
// bump allocator over blocks that are NEVER freed, rewound to offset zero at
// the start of every serial-engine run.  Allocation #j of a run always lands
// at the same address as allocation #j of any other run on this thread, so
// any program whose view-creation order is determined by its steal decisions
// — all pure programs — becomes address-stable and prefix-shareable.
//
// The arena is thread-local (sweep workers never contend) and holds raw
// storage only: reducers placement-new views into it and run destructors on
// hyper_destroy, nothing is ever deallocated until the thread exits.  Peak
// footprint is the largest total view footprint of any single run on the
// thread, not the sum over runs.
#pragma once

#include <cstddef>

namespace rader::view_arena {

/// Storage for one identity view, aligned to `align` (which must be a power
/// of two).  Valid until the thread exits; contents survive rewind() — the
/// same address is simply handed out again in a later run.
///
/// Allocations made while NO engine is installed (Engine::current() ==
/// nullptr) are PERMANENT: they raise the rewind floor instead of being
/// reclaimed.  That is what lets program fixtures built between runs (e.g.
/// the Figure-1 demo's owned list) share the arena with per-run transient
/// state: the fixture keeps its storage forever, while everything allocated
/// during a run is handed out again — at the same addresses — by the next
/// run.
void* allocate(std::size_t size, std::size_t align);

/// Reset the calling thread's allocation cursor to the floor (the high-water
/// mark of outside-run allocations), keeping every block.  Called by the
/// serial engine at the start of each run; all transient views from previous
/// runs must already be destroyed (the engine folds every view by run end).
/// After an abandoned resume (ResumeDiverged unwinding) leaked views are
/// reused without their destructors running — the documented leak of
/// SerialEngine::resume_from.
void rewind();

/// Bytes currently handed out since the last rewind() (tests).
std::size_t bytes_in_use();

}  // namespace rader::view_arena
