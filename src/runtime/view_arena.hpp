// Deterministic thread-local storage for reducer identity views.
//
// Identity views used to come from plain `new`, which hands out addresses at
// the mercy of the allocator's free lists — two executions with identical
// control flow could see their views at different addresses, differing only
// in where a previous run happened to leave the heap.  Detection never cared
// (each run's shadow state is self-consistent), but prefix-sharing sweeps do
// (core/sweep.hpp): resuming a run from a checkpointed detector fork splices
// a live suffix onto recorded prefix history KEYED ON ADDRESSES, so the
// re-executed prefix must touch the very same bytes as the original run
// (SerialEngine::go_live verifies exactly that and falls back otherwise).
//
// This arena makes view placement a pure function of allocation order: a
// bump allocator over blocks that are NEVER freed, rewound to offset zero at
// the start of every serial-engine run.  Allocation #j of a run always lands
// at the same address as allocation #j of any other run on this thread, so
// any program whose view-creation order is determined by its steal decisions
// — all pure programs — becomes address-stable and prefix-shareable.
//
// The arena is thread-local (sweep workers never contend) and holds raw
// storage only: reducers placement-new views into it and run destructors on
// hyper_destroy, nothing is ever deallocated until the thread exits.  Peak
// footprint is the largest total view footprint of any single run on the
// thread, not the sum over runs.
#pragma once

#include <cstddef>

namespace rader::view_arena {

/// Storage for one identity view, aligned to `align` (which must be a power
/// of two).  Valid until the thread exits; contents survive rewind() — the
/// same address is simply handed out again in a later run.
///
/// Allocations made while NO engine is installed (Engine::current() ==
/// nullptr) are PERMANENT: they raise the rewind floor instead of being
/// reclaimed (permanent meaning until the innermost enclosing Scope exits —
/// see below).  That is what lets program fixtures built between runs (e.g.
/// the Figure-1 demo's owned list) share the arena with per-run transient
/// state: the fixture keeps its storage forever, while everything allocated
/// during a run is handed out again — at the same addresses — by the next
/// run.
void* allocate(std::size_t size, std::size_t align);

/// Reset the calling thread's allocation cursor to the floor (the high-water
/// mark of outside-run allocations), keeping every block.  Called by the
/// serial engine at the start of each run; all transient views from previous
/// runs must already be destroyed (the engine folds every view by run end).
/// After an abandoned resume (ResumeDiverged unwinding) leaked views are
/// reused without their destructors running — the documented leak of
/// SerialEngine::resume_from.
void rewind();

/// Bytes currently handed out since the last rewind() (tests).
std::size_t bytes_in_use();

/// Bytes below the rewind floor — permanent until a Scope containing their
/// promotion exits (tests and space accounting).
std::size_t permanent_bytes();

/// RAII bound on floor promotion.  Outside-run allocations made while a
/// Scope is alive are permanent only for the Scope's lifetime: destruction
/// restores both the allocation cursor and the rewind floor to their
/// construction-time values, handing the storage out again afterwards.
///
/// Without this, every out-of-run allocation would raise the floor of its
/// thread FOREVER — a long-lived process running many sweeps (the daemon
/// shape) grows each worker's arena monotonically, one program fixture per
/// sweep.  Sweep workers therefore wrap their whole task (fixture
/// construction + runs) in a Scope, declared before the program instance so
/// the fixture's views are destroyed before their storage is reclaimed.
///
/// Scopes are per-thread and must nest like stack frames.
class Scope {
 public:
  Scope();
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  std::size_t block_, offset_, in_use_;
  std::size_t floor_block_, floor_offset_, floor_in_use_;
};

}  // namespace rader::view_arena
