// Callable wrappers used by the runtime.
//
// FnView is a non-owning callable reference: the serial engine executes
// spawned and called children *in place* (depth-first serial order), so no
// ownership transfer is needed and spawning is allocation-free.
//
// Task is an owning, move-only callable with small-buffer optimization: the
// parallel work-stealing engine must keep a spawned child alive until a
// worker (possibly a thief) executes it, after the spawning full-expression
// has ended.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "support/common.hpp"

namespace rader {

/// Non-owning type-erased reference to a callable.  The referenced callable
/// must outlive every invocation (true for the serial engine's immediate,
/// in-place execution).
class FnView {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FnView>>>
  FnView(F&& f)  // NOLINT(google-explicit-constructor): intentional adaptor
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        invoke_(+[](void* o) { (*static_cast<std::remove_reference_t<F>*>(o))(); }) {}

  void operator()() const { invoke_(obj_); }

 private:
  void* obj_;
  void (*invoke_)(void*);
};

/// Owning, move-only callable with inline storage for small captures.
class Task {
 public:
  Task() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Task>>>
  explicit Task(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (storage_) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<void**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  Task(Task&& other) noexcept { move_from(std::move(other)); }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  bool valid() const { return ops_ != nullptr; }

  void operator()() {
    RADER_DCHECK(valid());
    ops_->invoke(storage_);
  }

 private:
  static constexpr std::size_t kInlineSize = 48;

  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**reinterpret_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](void* p) { delete *reinterpret_cast<Fn**>(p); },
  };

  void move_from(Task&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace rader
