#include "runtime/view_epochs.hpp"

namespace rader {

std::vector<void*> ViewEpochs::extract_all(ReducerId h) {
  std::vector<void*> found;
  for (auto& epoch : stack_) {
    auto it = epoch.views.find(h);
    if (it != epoch.views.end()) {
      found.push_back(it->second);
      epoch.views.erase(it);
    }
  }
  return found;
}

}  // namespace rader
